package uncertaindb

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/ctable"
	"uncertaindb/internal/pctable"
	"uncertaindb/internal/probcalc"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/value"
	"uncertaindb/internal/workload"
)

// Property: on randomized c-tables, the d-tree engine computes the same
// tuple-marginal probabilities as brute-force enumeration — within float
// tolerance for the float64 engine, and bit-identically (equal rationals)
// for the exact engine vs exact enumeration.
func TestDTreeMatchesEnumerationOnRandomTables(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		spec := workload.CTableSpec{
			Rows: 5, Arity: 2, NumVars: 5, DomainSize: 3,
			PVarCell: 0.5, PCondAtom: 0.7, Seed: seed,
		}
		ct := workload.RandomCTable(spec)
		pc, err := pctable.UniformPCTable(ct)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		worlds, err := ct.Mod()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen := make(map[string]value.Tuple)
		for _, inst := range worlds.Instances() {
			for _, tp := range inst.Tuples() {
				seen[tp.Key()] = tp
			}
		}
		exact := probcalc.NewExact(pc)
		for _, tp := range seen {
			lineage := pc.Lineage(tp)

			got, err := pc.ConditionProbability(lineage)
			if err != nil {
				t.Fatalf("seed %d: dtree: %v", seed, err)
			}
			want, err := pc.ConditionProbabilityEnum(lineage)
			if err != nil {
				t.Fatalf("seed %d: enum: %v", seed, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("seed %d, tuple %s: dtree %.17g vs enum %.17g\nlineage: %s",
					seed, tp, got, want, lineage)
			}

			gotRat, err := exact.ProbabilityRat(lineage)
			if err != nil {
				t.Fatalf("seed %d: exact dtree: %v", seed, err)
			}
			wantRat, err := probcalc.EnumProbabilityRat(lineage, pc)
			if err != nil {
				t.Fatalf("seed %d: exact enum: %v", seed, err)
			}
			if gotRat.Cmp(wantRat) != 0 {
				t.Errorf("seed %d, tuple %s: exact dtree %s vs exact enum %s — not bit-identical\nlineage: %s",
					seed, tp, gotRat, wantRat, lineage)
			}
		}
	}
}

// Property: on the scaled courses workload, the d-tree marginal of every
// answer tuple matches enumeration, and Monte-Carlo estimates (sequential
// and parallel) land within sampling tolerance.
func TestCoursesMarginalsAcrossEngines(t *testing.T) {
	query := workload.ProjectionQuery(0)
	for _, students := range []int{6, 9} {
		tab := workload.Courses(students, 3, 17)
		answer, err := tab.EvalQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		sampler, err := pctable.NewSampler(answer, 99)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < students; s++ {
			target := value.NewTuple(value.Str(fmt.Sprintf("student%d", s)))
			got, err := answer.TupleProbability(target)
			if err != nil {
				t.Fatal(err)
			}
			want, err := answer.TupleProbabilityEnum(target)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("students=%d, %s: dtree %.17g vs enum %.17g", students, target, got, want)
			}
			est, se, err := sampler.EstimateTupleProbabilityParallel(target, 20000, 4)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est-want) > 5*se+2e-2 {
				t.Errorf("students=%d, %s: estimate %g too far from exact %g (stderr %g)",
					students, target, est, want, se)
			}
		}
	}
}

// The d-tree engine handles condition sizes far beyond enumeration: a
// 30-variable disjunction of independent conjunction pairs has a closed-form
// probability, and enumeration over 2^30 valuations would be hopeless.
func TestDTreeScalesBeyondEnumeration(t *testing.T) {
	tab := pctable.NewWithArity(1)
	var disj []condition.Condition
	pairs := 15
	for i := 0; i < pairs; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		tab.SetBoolDist(a, 0.5)
		tab.SetBoolDist(b, 0.5)
		disj = append(disj, condition.And(condition.IsTrueVar(a), condition.IsTrueVar(b)))
	}
	c := condition.Or(disj...)
	got, err := tab.ConditionProbability(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(1-0.25, float64(pairs))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P = %.17g, want %.17g", got, want)
	}
}

// randomEqCTable builds a random finite-domain c-table over shared
// variables, for the operator-core equivalence property below.
func randomEqCTable(rng *rand.Rand, arity, rows int, vars []string) *ctable.CTable {
	dom := value.IntRange(1, 3)
	tab := ctable.New(arity)
	for _, v := range vars {
		tab.SetDomain(v, dom)
	}
	randTerm := func() condition.Term {
		if rng.Intn(2) == 0 {
			return condition.ConstInt(int64(rng.Intn(3) + 1))
		}
		return condition.Var(vars[rng.Intn(len(vars))])
	}
	randAtom := func() condition.Condition {
		l, r := randTerm(), randTerm()
		if rng.Intn(2) == 0 {
			return condition.Eq(l, r)
		}
		return condition.Neq(l, r)
	}
	for i := 0; i < rows; i++ {
		terms := make([]condition.Term, arity)
		for j := range terms {
			terms[j] = randTerm()
		}
		var cond condition.Condition
		switch rng.Intn(3) {
		case 0:
			cond = condition.True()
		case 1:
			cond = randAtom()
		default:
			cond = condition.And(randAtom(), randAtom())
		}
		tab.AddRow(terms, cond)
	}
	return tab
}

// randomEqQuery builds a random query over the relations A and B.
func randomEqQuery(rng *rand.Rand, arity, depth int) ra.Query {
	type qa struct {
		q ra.Query
		a int
	}
	randPred := func(a int) ra.Predicate {
		l := ra.Col(rng.Intn(a))
		var r ra.Term
		if rng.Intn(2) == 0 {
			r = ra.Col(rng.Intn(a))
		} else {
			r = ra.ConstInt(int64(rng.Intn(3) + 1))
		}
		if rng.Intn(2) == 0 {
			return ra.Eq(l, r)
		}
		return ra.Ne(l, r)
	}
	var rec func(d int) qa
	rec = func(d int) qa {
		if d <= 0 {
			if rng.Intn(2) == 0 {
				return qa{ra.Rel("A"), arity}
			}
			return qa{ra.Rel("B"), arity}
		}
		sub := rec(d - 1)
		switch rng.Intn(7) {
		case 0:
			return qa{ra.Select(ra.AndOf(randPred(sub.a), randPred(sub.a)), sub.q), sub.a}
		case 1:
			cols := make([]int, rng.Intn(sub.a)+1)
			for i := range cols {
				cols[i] = rng.Intn(sub.a)
			}
			return qa{ra.Project(cols, sub.q), len(cols)}
		case 2:
			other := rec(d - 1)
			return qa{ra.Cross(sub.q, other.q), sub.a + other.a}
		case 3:
			other := rec(d - 1)
			return qa{ra.Join(sub.q, other.q, randPred(sub.a+other.a)), sub.a + other.a}
		case 4:
			return qa{ra.Union(sub.q, sub.q), sub.a}
		case 5:
			return qa{ra.Diff(sub.q, ra.Select(randPred(sub.a), sub.q)), sub.a}
		default:
			return qa{ra.Intersect(sub.q, sub.q), sub.a}
		}
	}
	return rec(depth).q
}

// Property (acceptance criterion of the physical-plan and batch-execution
// redesigns): on randomized multi-table environments and queries, the
// answers produced by the unified operator core across the full 2×2×2 grid
// of plan options — rewrites off/on × hash path off/on × batch engine
// off/on — have bit-identical rational tuple marginals to the frozen eager
// evaluator's, for every tuple possible under any answer, and identical
// certain-answer (marginal exactly 1) and possible-answer (marginal > 0)
// sets. Marginals are computed by the exact big.Rat engine, so "equal"
// means equal as rationals, not within a float tolerance. The CI race job
// runs this under -race (the batch cells execute morsel-parallel).
func TestOperatorCoreBitIdenticalToEager(t *testing.T) {
	one := big.NewRat(1, 1)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		env := ctable.Env{
			"A": randomEqCTable(rng, 2, 3, []string{"x", "y"}),
			"B": randomEqCTable(rng, 2, 2, []string{"y", "z"}),
		}
		q := randomEqQuery(rng, 2, 3)
		eagerCT, err := ctable.EvalQueryEnvEager(q, env, ctable.Options{Simplify: true})
		if err != nil {
			t.Fatalf("trial %d: eager: %v", trial, err)
		}
		eagerPC, err := pctable.UniformPCTable(eagerCT)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		eagerExact := probcalc.NewExact(eagerPC)

		for _, rewrite := range []bool{false, true} {
			for _, hash := range []bool{false, true} {
				for _, batch := range []bool{false, true} {
					grid := fmt.Sprintf("rewrite=%v hash=%v batch=%v", rewrite, hash, batch)
					coreCT, err := ctable.EvalQueryEnvWithOptions(q, env,
						ctable.Options{Simplify: true, Rewrite: rewrite, NoHash: !hash, NoBatch: !batch})
					if err != nil {
						t.Fatalf("trial %d (%s): core: %v", trial, grid, err)
					}
					corePC, err := pctable.UniformPCTable(coreCT)
					if err != nil {
						t.Fatalf("trial %d (%s): %v", trial, grid, err)
					}
					coreExact := probcalc.NewExact(corePC)

					// Every tuple possible under either answer must have the same
					// exact rational marginal in both, hence the same certain and
					// possible answer sets.
					tuples := make(map[string]value.Tuple)
					for _, pc := range []*pctable.PCTable{eagerPC, corePC} {
						possible, err := pc.PossibleTuples()
						if err != nil {
							t.Fatalf("trial %d (%s): %v", trial, grid, err)
						}
						for _, tp := range possible {
							tuples[tp.Key()] = tp
						}
					}
					for _, tp := range tuples {
						want, err := eagerExact.ProbabilityRat(eagerPC.Lineage(tp))
						if err != nil {
							t.Fatalf("trial %d: eager marginal: %v", trial, err)
						}
						got, err := coreExact.ProbabilityRat(corePC.Lineage(tp))
						if err != nil {
							t.Fatalf("trial %d (%s): core marginal: %v", trial, grid, err)
						}
						if got.Cmp(want) != 0 {
							t.Errorf("trial %d (%s), tuple %s: core %s vs eager %s — not bit-identical\nquery: %s",
								trial, grid, tp, got, want, q)
						}
						if (got.Sign() > 0) != (want.Sign() > 0) {
							t.Errorf("trial %d (%s), tuple %s: possible-answer sets differ (core %s, eager %s)",
								trial, grid, tp, got, want)
						}
						if (got.Cmp(one) == 0) != (want.Cmp(one) == 0) {
							t.Errorf("trial %d (%s), tuple %s: certain-answer sets differ (core %s, eager %s)",
								trial, grid, tp, got, want)
						}
					}
				}
			}
		}
	}
}

// Property (acceptance criterion of the shared-circuit engine): on the same
// randomized multi-table environments and queries as the grid test above,
// one shared circuit compiled over ALL answer tuples computes, for every
// tuple, a rational marginal bit-identical to the per-tuple exact d-tree's
// and to the frozen eager evaluator's — across the 2×2×2 plan-option grid,
// and with the circuit evaluated by 1 and by 8 concurrent goroutines (the
// compiled circuit is immutable; the CI race job runs this under -race).
func TestCircuitBitIdenticalAcrossGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 12; trial++ {
		env := ctable.Env{
			"A": randomEqCTable(rng, 2, 3, []string{"x", "y"}),
			"B": randomEqCTable(rng, 2, 2, []string{"y", "z"}),
		}
		q := randomEqQuery(rng, 2, 3)
		eagerCT, err := ctable.EvalQueryEnvEager(q, env, ctable.Options{Simplify: true})
		if err != nil {
			t.Fatalf("trial %d: eager: %v", trial, err)
		}
		eagerPC, err := pctable.UniformPCTable(eagerCT)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		eagerExact := probcalc.NewExact(eagerPC)

		for _, rewrite := range []bool{false, true} {
			for _, hash := range []bool{false, true} {
				for _, batch := range []bool{false, true} {
					grid := fmt.Sprintf("rewrite=%v hash=%v batch=%v", rewrite, hash, batch)
					coreCT, err := ctable.EvalQueryEnvWithOptions(q, env,
						ctable.Options{Simplify: true, Rewrite: rewrite, NoHash: !hash, NoBatch: !batch})
					if err != nil {
						t.Fatalf("trial %d (%s): core: %v", trial, grid, err)
					}
					corePC, err := pctable.UniformPCTable(coreCT)
					if err != nil {
						t.Fatalf("trial %d (%s): %v", trial, grid, err)
					}
					coreExact := probcalc.NewExact(corePC)

					possible, err := corePC.PossibleTuples()
					if err != nil {
						t.Fatalf("trial %d (%s): %v", trial, grid, err)
					}
					lineages := make([]condition.Condition, len(possible))
					for i, tp := range possible {
						lineages[i] = corePC.Lineage(tp)
					}
					circuit, err := probcalc.CompileAnswer(lineages, corePC)
					if err != nil {
						t.Fatalf("trial %d (%s): compile: %v", trial, grid, err)
					}
					if err := circuit.WellFormed(); err != nil {
						t.Fatalf("trial %d (%s): %v", trial, grid, err)
					}

					for _, workers := range []int{1, 8} {
						results := make([][]*big.Rat, workers)
						errs := make([]error, workers)
						var wg sync.WaitGroup
						for w := 0; w < workers; w++ {
							wg.Add(1)
							go func(w int) {
								defer wg.Done()
								results[w], errs[w] = circuit.EvalRat(corePC)
							}(w)
						}
						wg.Wait()
						for w := 0; w < workers; w++ {
							if errs[w] != nil {
								t.Fatalf("trial %d (%s) workers=%d: eval: %v", trial, grid, workers, errs[w])
							}
							for i, tp := range possible {
								got := results[w][i]
								dtree, err := coreExact.ProbabilityRat(lineages[i])
								if err != nil {
									t.Fatalf("trial %d (%s): dtree twin: %v", trial, grid, err)
								}
								eager, err := eagerExact.ProbabilityRat(eagerPC.Lineage(tp))
								if err != nil {
									t.Fatalf("trial %d: eager marginal: %v", trial, err)
								}
								if got.Cmp(dtree) != 0 || got.Cmp(eager) != 0 {
									t.Errorf("trial %d (%s) workers=%d, tuple %s: circuit %s, dtree %s, eager %s — not bit-identical\nquery: %s",
										trial, grid, workers, tp, got, dtree, eager, q)
								}
							}
						}
					}
				}
			}
		}
	}
}
