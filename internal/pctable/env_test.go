package pctable

import (
	"math"
	"strings"
	"testing"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/value"
)

// boolGuard attaches a Bernoulli variable to the table and returns the
// condition "x = true".
func boolGuard(t *PCTable, x string, p float64) condition.Condition {
	t.SetBoolDist(x, p)
	return condition.IsTrueVar(x)
}

// Two tables joined by name: the marginal of a joined tuple is the product
// of the independent row guards, and variables shared across tables are the
// same random quantity.
func TestEvalQueryEnvJoin(t *testing.T) {
	takes := NewWithArity(2)
	takes.AddConstRow(value.NewTuple(value.Str("Alice"), value.Str("phys")), nil)
	takes.AddConstRow(value.NewTuple(value.Str("Bob"), value.Str("math")), boolGuard(takes, "b", 0.4))

	labs := NewWithArity(2)
	labs.AddConstRow(value.NewTuple(value.Str("phys"), value.Str("L1")), boolGuard(labs, "l", 0.5))
	labs.AddConstRow(value.NewTuple(value.Str("math"), value.Str("L2")), nil)

	q := ra.Project([]int{0, 3},
		ra.Join(ra.Rel("Takes"), ra.Rel("Labs"), ra.Eq(ra.Col(1), ra.Col(2))))
	answer, err := EvalQueryEnv(q, Env{"Takes": takes, "Labs": labs})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := answer.TupleProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		value.NewTuple(value.Str("Alice"), value.Str("L1")).Key(): 0.5,
		value.NewTuple(value.Str("Bob"), value.Str("L2")).Key():   0.4,
	}
	if len(probs) != len(want) {
		t.Fatalf("got %d answer tuples, want %d: %v", len(probs), len(want), probs)
	}
	for _, tp := range probs {
		if w, ok := want[tp.Tuple.Key()]; !ok || math.Abs(tp.P-w) > 1e-12 {
			t.Errorf("P[%s] = %g, want %g", tp.Tuple, tp.P, w)
		}
	}
}

func TestEvalQueryEnvSharedVariable(t *testing.T) {
	a := NewWithArity(1)
	a.AddConstRow(value.Ints(1), boolGuard(a, "g", 0.3))
	b := NewWithArity(1)
	b.AddConstRow(value.Ints(1), boolGuard(b, "g", 0.3))

	// A ∩ B: both rows are guarded by the same variable g, so the marginal
	// of (1) is P[g] = 0.3, not 0.09.
	answer, err := EvalQueryEnv(ra.Intersect(ra.Rel("A"), ra.Rel("B")), Env{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	p, err := answer.TupleProbability(value.Ints(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.3) > 1e-12 {
		t.Errorf("P[(1)] = %g, want 0.3 (shared variable)", p)
	}
}

func TestEvalQueryEnvConflictingDistributions(t *testing.T) {
	a := NewWithArity(1)
	a.AddConstRow(value.Ints(1), boolGuard(a, "g", 0.3))
	b := NewWithArity(1)
	b.AddConstRow(value.Ints(2), boolGuard(b, "g", 0.7))

	_, err := EvalQueryEnv(ra.Union(ra.Rel("A"), ra.Rel("B")), Env{"A": a, "B": b})
	if err == nil || !strings.Contains(err.Error(), "conflicting distributions") {
		t.Fatalf("expected conflicting-distributions error, got %v", err)
	}
}

func TestEvalQueryEnvUnknownRelation(t *testing.T) {
	a := NewWithArity(1)
	a.AddConstRow(value.Ints(1), nil)
	if _, err := EvalQueryEnv(ra.Rel("Nope"), Env{"A": a}); err == nil {
		t.Fatal("expected unknown-relation error")
	}
}
