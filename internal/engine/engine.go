// Package engine executes relational algebra queries over a catalog of
// pc-tables and caches the compiled artifacts.
//
// A query is *prepared* once: parsed, validated against a catalog snapshot,
// run through the closed algebra (Theorems 4 and 9) to obtain the answer
// pc-table, and its candidate answer tuples and lineage conditions are
// extracted. The prepared plan is cached under a key derived from the query
// text, the marginal engine, and the exact versions of the catalog tables
// the query reads — so replacing one table invalidates exactly the plans
// that depend on it, while plans over other tables keep hitting. The cache
// is LRU-bounded and publishes hit/miss/eviction/latency counters.
//
// Execution computes tuple marginals with one of three engines — dtree
// (d-tree decomposition, internal/probcalc), enum (brute-force valuation
// enumeration) or mc (Monte-Carlo estimation) — under a bounded worker
// pool. Exact marginals are computed once per plan and memoized; Monte-Carlo
// re-samples per request (deterministically for a fixed seed).
package engine

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uncertaindb/internal/catalog"
	"uncertaindb/internal/condition"
	"uncertaindb/internal/ctable"
	"uncertaindb/internal/exec"
	"uncertaindb/internal/obs"
	"uncertaindb/internal/parser"
	"uncertaindb/internal/pctable"
	"uncertaindb/internal/prob"
	"uncertaindb/internal/probcalc"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/value"
	"uncertaindb/internal/wal"
)

// Typed execution errors. Callers classify failures with errors.Is — the
// HTTP layer maps ErrUnknownTable to 404 and ErrBadQuery to 400 — instead of
// matching opaque error strings.
var (
	// ErrUnknownTable reports a query referencing a table absent from the
	// catalog snapshot it executed against.
	ErrUnknownTable = errors.New("engine: unknown table")
	// ErrBadQuery reports a request that can never succeed against any
	// catalog: unparsable query text, an ill-formed algebra expression, an
	// unknown marginal engine, or a table without the distributions
	// marginals need.
	ErrBadQuery = errors.New("engine: bad query")
)

// Kind selects how tuple marginals are computed.
type Kind string

const (
	// KindDTree decomposes lineage conditions (internal/probcalc). Default.
	KindDTree Kind = "dtree"
	// KindCircuit compiles the whole answer's lineage set into one shared
	// arithmetic circuit (probcalc.CompileAnswer) and evaluates every
	// marginal in a single bottom-up pass. The circuit is retained on the
	// cached plan, so what-if re-evaluation skips decomposition entirely.
	KindCircuit Kind = "circuit"
	// KindEnum enumerates every valuation of the lineage variables.
	KindEnum Kind = "enum"
	// KindMC estimates marginals by Monte-Carlo sampling.
	KindMC Kind = "mc"
	// KindAuto picks dtree, circuit or mc per answer from the lineage-set
	// statistics gathered at plan compilation (see Selection).
	KindAuto Kind = "auto"
)

// ParseKind parses an engine name; the empty string selects KindDTree.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "":
		return KindDTree, nil
	case string(KindDTree), string(KindCircuit), string(KindEnum), string(KindMC), string(KindAuto):
		return Kind(s), nil
	default:
		return "", fmt.Errorf("%w: unknown engine %q (valid engines: auto, circuit, dtree, enum, mc)", ErrBadQuery, s)
	}
}

// CertainEps is the tolerance under which a float marginal counts as 1 and
// the tuple is reported as a certain answer.
const CertainEps = 1e-9

// Options tunes an Engine.
type Options struct {
	// CacheSize bounds the number of cached prepared plans (LRU eviction).
	// Zero or negative selects 128.
	CacheSize int
	// Workers bounds the number of concurrently executing queries and the
	// morsel-driven parallelism inside each plan compilation (the batch
	// engine splits base-table scans into morsels and runs operator
	// pipelines on a pool of this size). Zero or negative selects
	// GOMAXPROCS.
	Workers int
	// DisableRewrites turns off the logical-plan rewriter (predicate
	// pushdown, projection pruning) in the operator core. Rewrites never
	// change answers, only compilation cost, so they are on by default.
	DisableRewrites bool
	// DisableBatch turns off the vectorized batch engine, restoring the
	// tuple-at-a-time iterator operators. The batch path is byte-identical
	// to the iterator path (same answers, same plans modulo the "batch-"
	// operator prefix), only faster; this is a debugging aid.
	DisableBatch bool
	// Obs, when non-nil, turns on observability: every Execute records a
	// span tree (snapshot, parse, compile with per-pipeline children,
	// marginals), query latencies land in cold/warm histograms, the
	// engine's counters are exported through Obs.Reg, and executions at or
	// above Obs.SlowThreshold are captured in the slow-query ring. Nil (the
	// default) makes every instrumentation point a no-op.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	// Cache counters.
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`     // LRU-bound evictions
	Invalidations uint64 `json:"invalidations"` // plans dropped because a table they read was replaced
	Entries       int    `json:"entries"`
	CacheSize     int    `json:"cacheSize"`
	// Execution counters.
	Executions uint64 `json:"executions"`
	Errors     uint64 `json:"errors"`
	// Cumulative latencies (nanoseconds): preparation (parse + closed
	// algebra + candidate discovery, cache misses only) and execution
	// (marginal computation).
	PrepareNanos uint64 `json:"prepareNanos"`
	ExecNanos    uint64 `json:"execNanos"`
	Workers      int    `json:"workers"`
	// Ops aggregates the physical-operator counters — rows in/out of the
	// counting operators, hash-bucket probes, residual-bucket hits, and how
	// many joins compiled to the symbolic hash join vs the nested-loop
	// fallback — over every plan compilation since startup (cache hits
	// reuse the compiled answer and add nothing).
	Ops exec.OpStats `json:"ops"`
	// Probcalc aggregates the probability-engine counters across every
	// execution. The per-evaluator probcalc.Stats would otherwise be lost
	// when an evaluator is dropped with its plan; these totals make the
	// cross-query memo hit-ratio (and circuit sharing) observable.
	Probcalc ProbcalcStats `json:"probcalc"`
	// Auto counts what the engine=auto selector chose, per target engine.
	Auto AutoStats `json:"auto"`
	// Maintenance counts incremental view maintenance work: patches applied,
	// plans maintained in place vs recompiles forced (by fallback reason),
	// and memoized marginals reused vs refreshed.
	Maintenance MaintenanceStats `json:"maintenance"`
}

// ProbcalcStats aggregates decomposition-memo and circuit-compilation
// counters over every marginal computation since startup.
type ProbcalcStats struct {
	// MemoHits/MemoMisses total the d-tree decomposition memo across all
	// evaluators the engine has run (fresh computations only; memoized plan
	// marginals add nothing).
	MemoHits   uint64 `json:"memoHits"`
	MemoMisses uint64 `json:"memoMisses"`
	// MemoHitRatio is MemoHits / (MemoHits + MemoMisses), 0 when idle.
	MemoHitRatio float64 `json:"memoHitRatio"`
	// CircuitCompiles counts shared-circuit compilations; CircuitNodes and
	// CircuitShared total their DAG sizes and compile-time memo hits
	// (subcircuits reused across answer tuples via hash-consed IDs).
	CircuitCompiles uint64 `json:"circuitCompiles"`
	CircuitNodes    uint64 `json:"circuitNodes"`
	CircuitShared   uint64 `json:"circuitShared"`
}

// AutoStats counts engine=auto selector decisions by chosen engine.
type AutoStats struct {
	DTree   uint64 `json:"dtree"`
	Circuit uint64 `json:"circuit"`
	MC      uint64 `json:"mc"`
}

// Request is one query execution.
type Request struct {
	// Query is the relational algebra query text (parser.ParseQuery syntax).
	Query string
	// Engine selects the marginal engine; empty means dtree.
	Engine string
	// Samples is the Monte-Carlo sample count (mc only; default 10000).
	Samples int
	// Seed is the Monte-Carlo random seed (mc only; default 1).
	Seed int64
	// Workers shards the Monte-Carlo draw (mc only; default 1, sequential).
	Workers int
	// Analyze re-executes the compiled algebra with per-operator
	// instrumentation and attaches the timed plan tree (and the execution's
	// span tree) to the Result — EXPLAIN ANALYZE. The instrumented run is
	// separate from the cached artifact, so analyzing never perturbs the
	// answer or the cache.
	Analyze bool
	// Distributions overrides variable distributions for this execution
	// only — the what-if query. Keys are variable names; values map value
	// literals (parser syntax: integer, 'string', true/false) to
	// probabilities, which must form a distribution over a subset of the
	// variable's declared support. What-if marginals are computed fresh per
	// request and never cached; with the circuit engine the cached circuit
	// is re-weighted without re-decomposing.
	Distributions map[string]map[string]float64
}

// TupleAnswer is one answer tuple with its marginal probability.
type TupleAnswer struct {
	Tuple value.Tuple
	P     float64
	// StdErr is the standard error of a Monte-Carlo estimate (0 for exact
	// engines).
	StdErr float64
	// Certain reports whether the tuple is a certain answer: marginal 1
	// within CertainEps for the exact engines; for Monte-Carlo, only a
	// lineage that simplified to the constant true (an estimate of 1 is not
	// proof).
	Certain bool
}

// Selection is the engine=auto selector's decision for one plan, together
// with the lineage-set statistics that drove it. It is computed once at plan
// compilation and reported in results, /v1/stats and EXPLAIN ANALYZE spans.
type Selection struct {
	// Tuples is the number of candidate answer tuples.
	Tuples int `json:"tuples"`
	// Vars is the number of distinct variables across all lineages.
	Vars int `json:"vars"`
	// SharingDegree is Σᵢ |vars(lineageᵢ)| / Vars: 1 means tuples share no
	// variables; higher means cross-tuple sharing a circuit can exploit.
	SharingDegree float64 `json:"sharingDegree"`
	// MaxComponentVars is the variable count of the largest
	// variable-connected component within any single lineage — the biggest
	// exact subproblem one marginal poses. Variables shared across DIFFERENT
	// tuples' lineages don't couple: each marginal is computed on its own.
	MaxComponentVars int `json:"maxComponentVars"`
	// Chosen is the engine the selector picked; Reason says why.
	Chosen Kind   `json:"chosen"`
	Reason string `json:"reason"`
}

// Result is the outcome of executing a Request.
type Result struct {
	Query string
	Kind  Kind
	// Effective is the engine that actually computed the marginals: equal
	// to Kind except for auto, where it is the selector's choice.
	Effective Kind
	// Selection is the auto-selector's inputs and decision (Kind auto only).
	Selection *Selection
	// WhatIf reports the marginals were computed under request-supplied
	// distribution overrides (Request.Distributions) and bypassed the
	// memoized plan marginals.
	WhatIf         bool
	CatalogVersion uint64
	// Tables are the catalog tables the query read, sorted.
	Tables []string
	// CacheHit reports whether the prepared plan came from the cache.
	CacheHit bool
	// Answer is the rendered answer pc-table (conditions are lineage).
	Answer string
	// Plan is the rendered physical operator tree the query compiled to
	// (hash joins with their keys, scans, breakers); cached with the plan.
	Plan string
	// Tuples are the possible answer tuples with marginals, sorted by tuple
	// key; deterministic for a fixed catalog version and request.
	Tuples []TupleAnswer
	// PrepareDuration is the plan-compilation time (0 on a cache hit);
	// ExecDuration is the marginal-computation time of this request.
	PrepareDuration time.Duration
	ExecDuration    time.Duration
	// Analyzed is the per-operator timed plan tree (Request.Analyze only).
	Analyzed *exec.PlanNode
	// Trace is the exported span tree of this execution (Request.Analyze
	// with Options.Obs configured only; slow executions are additionally
	// captured in the observer's slow-query ring).
	Trace *obs.SpanExport
}

// candidate is one possible answer tuple with its lineage condition.
type candidate struct {
	tuple   value.Tuple
	lineage condition.Condition
}

// plan is a compiled query: the closed-algebra answer and the candidate
// answers, plus memoized exact marginals. Immutable after construction
// except for the once-guarded marginal fields.
type plan struct {
	key       string
	queryText string
	kind      Kind
	tables    []string // sorted referenced table names

	// query is the parsed algebra and tableVers the per-table catalog
	// versions the plan was compiled (or last maintained) against; together
	// they let a patch derive the plan's next cache key and delta plan
	// without re-parsing or string surgery on the key.
	query     ra.Query
	tableVers map[string]uint64

	answer     *pctable.PCTable
	rendered   string
	physical   string // rendered physical operator tree (exec.Explain)
	ops        exec.OpStats
	candidates []candidate
	sel        Selection // lineage-set statistics + auto-selector decision

	// Maintenance caches, built lazily on the first patch and carried from
	// plan to maintained plan so per-patch work stays O(delta) instead of
	// O(answer): the rendered answer row lines (aligned with answer rows),
	// per-variable row refcounts (so the rendered trailer needs no Vars
	// scan), and the top projection's group index keyed by canonical term
	// identity. Successor plans copy-then-extend these — a plan's own maps
	// and slices are never mutated, so concurrent maintainers that read the
	// same predecessor stay safe.
	rowLines   []string
	varRefs    map[condition.Variable]int
	groupIndex map[string]int

	// Exact marginals (dtree/enum/circuit) are computed once on first
	// execution and shared by every later hit. margDone is set (after the
	// once completes successfully) so incremental maintenance knows the
	// memoized marginals exist and may be carried forward.
	once      sync.Once
	margDone  atomic.Bool
	marginals []TupleAnswer
	probStats probcalc.Stats // d-tree decomposition shape (dtree only)
	execErr   error

	// The shared circuit is compiled once per plan (first circuit execution
	// or what-if) and retained, so re-evaluation under overridden
	// distributions never re-decomposes.
	circuitOnce sync.Once
	circuit     *probcalc.Circuit
	circuitErr  error
}

// Engine is the concurrent query service core: a catalog plus a bounded
// LRU cache of prepared plans and a bounded execution pool. Safe for
// concurrent use.
type Engine struct {
	cat      *catalog.Catalog
	opts     Options
	sem      chan struct{}
	execPool *exec.WorkerPool // shared morsel-worker budget across executions

	mu      sync.Mutex
	lru     *list.List // of *plan; front = most recently used
	byKey   map[string]*list.Element
	byTable map[string]map[string]bool // table name -> cache keys reading it

	hits, misses, evictions, invalidations   uint64
	executions, errors, prepNanos, execNanos atomic.Uint64

	opMu     sync.Mutex
	opTotals exec.OpStats // physical-operator counters over all compilations

	// Probability-engine totals (fed on fresh computations; memoized plan
	// marginals add nothing) and auto-selector decision counters.
	memoHits, memoMisses                        atomic.Uint64
	circuitCompiles, circuitNodes, circuitShare atomic.Uint64
	autoDTree, autoCircuit, autoMC              atomic.Uint64

	// Incremental view maintenance counters (see MaintenanceStats).
	mnt maintCounters

	// Observability (all nil-safe no-ops when Options.Obs is unset).
	obs                      *obs.Observer
	coldSeconds, warmSeconds *obs.Histogram
	applySeconds             *obs.Histogram // delta-apply latency per patch
}

// New builds an engine over the given catalog.
func New(cat *catalog.Catalog, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		cat:      cat,
		opts:     opts,
		sem:      make(chan struct{}, opts.Workers),
		execPool: exec.NewWorkerPool(opts.Workers),
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
		byTable:  make(map[string]map[string]bool),
		obs:      opts.Obs,
	}
	if opts.Obs != nil {
		e.instrument(opts.Obs)
	}
	return e
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// PutTable registers (or replaces) a catalog table and invalidates every
// cached plan that reads it.
func (e *Engine) PutTable(name string, t *pctable.PCTable) (uint64, error) {
	v, err := e.cat.Put(name, t)
	if err != nil {
		return 0, err
	}
	e.invalidateReplaced(name)
	return v, nil
}

// PatchTable applies a row-level patch to a catalog table and incrementally
// maintains every cached plan that reads it: instead of dropping dependent
// plans (the PutTable path), each plan's materialized answer is updated by
// delta propagation or re-evaluation and re-keyed under the new table
// version, so the very next execution is a cache hit. Plans whose shape the
// maintainer cannot handle fall back to invalidation with a typed reason
// (see MaintenanceStats).
func (e *Engine) PatchTable(name string, p *wal.Patch) (uint64, error) {
	if e.cat.Snapshot().Get(name) == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTable, name)
	}
	v, ap, err := e.cat.ApplyPatch(name, p)
	if err != nil {
		return 0, err
	}
	e.maintainTable(name, v, ap)
	return v, nil
}

// PutParsed is PutTable for a table parsed by internal/parser.
func (e *Engine) PutParsed(pt *parser.ParsedTable) (uint64, error) {
	return e.PutTable(pt.Name, pt.PCTable)
}

// LoadCatalogScript loads a multi-table catalog script into the catalog,
// invalidating plans that read any (re)defined table.
func (e *Engine) LoadCatalogScript(r io.Reader) ([]string, error) {
	names, err := e.cat.LoadScript(r)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		e.invalidateReplaced(name)
	}
	return names, nil
}

// DropTable removes a catalog table and invalidates dependent plans. The
// error is non-nil only when the catalog's durability sink refused the
// mutation (the drop did not happen and nothing was invalidated).
func (e *Engine) DropTable(name string) (bool, error) {
	ok, err := e.cat.Drop(name)
	if ok {
		e.invalidateReplaced(name)
	}
	return ok, err
}

// ApplyChange applies one replicated mutation record (catalog.ApplyRecord)
// — the follower-side twin of PutTable/DropTable/PatchTable. Put and delete
// records invalidate every cached plan reading the affected table; patch
// records run the same incremental maintenance the leader ran, so a follower's
// cache tracks row-level mutations without recompiles. Because the applied
// entry keeps the leader's per-table version, plans compiled or maintained
// after the apply carry exactly the leader's cache keys.
func (e *Engine) ApplyChange(rec *wal.Record) error {
	ap, err := e.cat.ApplyRecordEx(rec)
	if err != nil {
		return err
	}
	if rec.Kind == wal.KindPatch && ap != nil {
		e.maintainTable(rec.Name, rec.Version, ap)
		return nil
	}
	e.invalidateReplaced(rec.Name)
	return nil
}

// ResetCatalog replaces the catalog's content with the given state
// (catalog.ResetToState — the follower resync path) and purges the entire
// plan cache: after a resync the set of versions that changed is unknown, so
// every compiled plan is suspect.
func (e *Engine) ResetCatalog(st *wal.State) {
	e.cat.ResetToState(st)
	e.mu.Lock()
	for e.lru.Len() > 0 {
		e.removeLocked(e.lru.Front(), &e.invalidations)
	}
	e.mu.Unlock()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Hits:          e.hits,
		Misses:        e.misses,
		Evictions:     e.evictions,
		Invalidations: e.invalidations,
		Entries:       e.lru.Len(),
		CacheSize:     e.opts.CacheSize,
	}
	e.mu.Unlock()
	s.Executions = e.executions.Load()
	s.Errors = e.errors.Load()
	s.PrepareNanos = e.prepNanos.Load()
	s.ExecNanos = e.execNanos.Load()
	s.Workers = e.opts.Workers
	e.opMu.Lock()
	s.Ops = e.opTotals
	e.opMu.Unlock()
	s.Probcalc = ProbcalcStats{
		MemoHits:        e.memoHits.Load(),
		MemoMisses:      e.memoMisses.Load(),
		CircuitCompiles: e.circuitCompiles.Load(),
		CircuitNodes:    e.circuitNodes.Load(),
		CircuitShared:   e.circuitShare.Load(),
	}
	if total := s.Probcalc.MemoHits + s.Probcalc.MemoMisses; total > 0 {
		s.Probcalc.MemoHitRatio = float64(s.Probcalc.MemoHits) / float64(total)
	}
	s.Auto = AutoStats{
		DTree:   e.autoDTree.Load(),
		Circuit: e.autoCircuit.Load(),
		MC:      e.autoMC.Load(),
	}
	s.Maintenance = e.mnt.snapshot()
	return s
}

// phases is the per-execution observability state: the boundary clock
// readings of the warm path's fixed phases plus a lazily materialized trace.
// A cache-hit execution has a statically known span shape — snapshot, parse,
// marginals under the root — so nothing is recorded while it runs: the warm
// path's entire observability cost is two extra clock readings and one
// histogram observation, and the span tree is reconstructed from the saved
// readings only if the query turns out slow or analyzed. The cold path
// materializes the trace at compile start, where the operator core needs a
// live span to hang rewrite/batch/pipeline children under.
type phases struct {
	obs     *obs.Observer
	t0, t1  int64 // obs.Nanotime readings: root start; snapshot end = parse start
	hasSnap bool  // whether a snapshot phase was timed (false for batch items)
	tr      *obs.Trace
	root    obs.SpanRef
}

// materialize builds the trace (idempotent) and backfills the snapshot and
// parse spans from the saved boundary readings, ending parse at parseEnd.
// Returns the root span — a no-op ref with observability off.
func (ph *phases) materialize(parseEnd int64) obs.SpanRef {
	if ph.tr != nil || ph.obs == nil {
		return ph.root
	}
	ph.tr = ph.obs.StartTraceAt("query", ph.t0)
	ph.root = ph.tr.Root()
	if ph.hasSnap {
		sp := ph.root.ChildAt("snapshot", ph.t0)
		sp.EndAt(ph.t1)
	}
	sp := ph.root.ChildAt("parse", ph.t1)
	sp.EndAt(parseEnd)
	return ph.root
}

// dtreeAttrs attaches the d-tree decomposition shape to a marginals span.
func dtreeAttrs(sp obs.SpanRef, st probcalc.Stats) {
	sp.SetInt("dtreeNodes", int64(st.ComponentSplits+st.ExclusiveSplits+st.ShannonExpansions+st.Enumerations))
	sp.SetInt("memoHits", int64(st.MemoHits))
	sp.SetInt("memoMisses", int64(st.MemoMisses))
	sp.SetInt("memoEntries", int64(st.MemoEntries))
}

// marginalAttrs describes a marginal computation on its span: the effective
// engine, the auto-selector's inputs and decision, and — for freshly
// computed exact marginals — the decomposition or circuit shape.
func marginalAttrs(sp obs.SpanRef, chosen Kind, sel *Selection, computed bool, p *plan) {
	sp.SetStr("engine", string(chosen))
	if sel != nil {
		sp.SetInt("selTuples", int64(sel.Tuples))
		sp.SetInt("selVars", int64(sel.Vars))
		sp.SetInt("selSharingPct", int64(sel.SharingDegree*100))
		sp.SetInt("selMaxComponentVars", int64(sel.MaxComponentVars))
		sp.SetStr("selReason", sel.Reason)
	}
	if !computed {
		return
	}
	switch chosen {
	case KindDTree:
		dtreeAttrs(sp, p.probStats)
	case KindCircuit:
		if p.circuit != nil {
			st := p.circuit.Stats()
			sp.SetInt("circuitNodes", int64(st.Nodes))
			sp.SetInt("circuitRoots", int64(st.Roots))
			sp.SetInt("circuitShared", int64(st.SharedHits))
		}
	}
}

// Execute runs one request: prepare (or fetch) the plan, then compute the
// marginals with the requested engine under the bounded worker pool.
//
// With Options.Obs set, the execution is described by a span tree rooted at
// "query": a "snapshot" child for catalog snapshot acquisition, "parse"
// (query text to validated algebra, including cache lookup and pool
// admission), on a cache miss "compile" (with rewrite/build/pipeline children
// from the operator core), "marginals" (d-tree decomposition shape as
// attributes), and for analyze requests "analyze". Warm (cache-hit)
// executions never record spans while running — see phases — so the warm
// path pays only two extra clock readings and a histogram observation.
func (e *Engine) Execute(req Request) (*Result, error) {
	ph := phases{obs: e.obs}
	if e.obs != nil {
		ph.t0 = obs.Nanotime()
	}
	snap := e.cat.Snapshot()
	if e.obs != nil {
		ph.t1 = obs.Nanotime()
		ph.hasSnap = true
	}
	res, err := e.executeOn(snap, req, &ph)
	if err != nil {
		e.errors.Add(1)
		return nil, err
	}
	return res, nil
}

// BatchItem is one outcome of ExecuteBatch: a result or a per-query error.
type BatchItem struct {
	Result *Result
	Err    error
}

// ExecuteBatch runs every request against a single catalog snapshot, so the
// whole batch sees one consistent version (returned alongside the items,
// even when every query fails) and snapshotting is paid once instead of per
// request. Items execute concurrently under the engine's bounded worker
// pool; results come back in request order. Failures are reported per item:
// one bad query does not abort its neighbours.
func (e *Engine) ExecuteBatch(reqs []Request) ([]BatchItem, uint64) {
	snap := e.cat.Snapshot()
	out := make([]BatchItem, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			// Batch items share one snapshot, so their traces have no
			// "snapshot" child; parse starts at the root.
			ph := phases{obs: e.obs}
			if e.obs != nil {
				ph.t0 = obs.Nanotime()
				ph.t1 = ph.t0
			}
			res, err := e.executeOn(snap, req, &ph)
			if err != nil {
				e.errors.Add(1)
			}
			out[i] = BatchItem{Result: res, Err: err}
		}(i, req)
	}
	wg.Wait()
	return out, snap.Version()
}

func (e *Engine) executeOn(snap *catalog.Snapshot, req Request, ph *phases) (*Result, error) {
	defer func() { e.obs.FinishTrace(ph.tr) }()
	kind, err := ParseKind(req.Engine)
	if err != nil {
		return nil, err
	}

	// Bounded execution pool: at most opts.Workers queries in flight at
	// once. The slot covers both plan compilation (the expensive cold path)
	// and marginal computation.
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	p, hit, prepDur, err := e.prepare(snap, req.Query, kind, ph)
	if err != nil {
		return nil, err
	}

	// Resolve auto to a concrete engine from the plan's lineage statistics
	// (computed once at compilation, so warm hits pay nothing here).
	chosen := kind
	var sel *Selection
	if kind == KindAuto {
		sel = &p.sel
		chosen = p.sel.Chosen
		switch chosen {
		case KindCircuit:
			e.autoCircuit.Add(1)
		case KindMC:
			e.autoMC.Add(1)
		default:
			e.autoDTree.Add(1)
		}
	}
	override, err := overrideTable(p, req.Distributions)
	if err != nil {
		return nil, err
	}

	start := obs.Nanotime()
	var margSpan obs.SpanRef
	if ph.tr != nil {
		// Cold path: the trace was materialized at compile start, so the
		// marginals phase records live and its d-tree attributes can attach.
		margSpan = ph.root.ChildAt("marginals", start)
	}
	var tuples []TupleAnswer
	computed := false
	switch {
	case override != nil:
		// What-if: fresh marginals under the overridden distributions,
		// never memoized on the plan (the override is per-request state).
		tuples, err = e.whatIfMarginals(p, chosen, override, req)
		if err != nil {
			return nil, err
		}
	case chosen == KindDTree || chosen == KindEnum || chosen == KindCircuit:
		p.once.Do(func() {
			if chosen == KindCircuit {
				p.marginals, p.execErr = e.circuitMarginals(p, nil)
			} else {
				p.marginals, p.probStats, p.execErr = exactMarginals(p, chosen)
				if p.execErr == nil {
					e.memoHits.Add(uint64(p.probStats.MemoHits))
					e.memoMisses.Add(uint64(p.probStats.MemoMisses))
				}
			}
			if p.execErr == nil {
				p.margDone.Store(true)
			}
			computed = true
		})
		if p.execErr != nil {
			return nil, p.execErr
		}
		tuples = p.marginals
	case chosen == KindMC:
		tuples, err = sampledMarginals(p, p.answer, req)
		if err != nil {
			return nil, err
		}
	}
	end := obs.Nanotime()
	execDur := time.Duration(end - start)
	margSpan.EndDur(execDur)
	// Effective engine, selector decision and — for fresh exact runs — the
	// decomposition/circuit shape; warm hits reuse the memoized marginals
	// and attach only the engine and selection.
	marginalAttrs(margSpan, chosen, sel, computed, p)
	e.executions.Add(1)
	e.execNanos.Add(uint64(execDur))

	res := &Result{
		Query:     p.queryText,
		Kind:      kind,
		Effective: chosen,
		WhatIf:    override != nil,
		// Stamp the execution snapshot's version, not the prepare-time one a
		// cached plan carries: the answer is valid at the version the
		// execution read, and replicas at equal versions must stamp equal
		// versions regardless of cache history (the router's freshness
		// enforcement depends on it).
		CatalogVersion:  snap.Version(),
		Tables:          p.tables,
		CacheHit:        hit,
		Answer:          p.rendered,
		Plan:            p.physical,
		Tuples:          tuples,
		PrepareDuration: prepDur,
		ExecDuration:    execDur,
	}
	if sel != nil {
		selCopy := *sel
		res.Selection = &selCopy
	}

	if ph.obs == nil {
		if req.Analyze {
			res.Analyzed, err = e.analyzePlan(snap, p)
			if err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	total := time.Duration(end - ph.t0)
	if hit {
		e.warmSeconds.Observe(total)
	} else {
		e.coldSeconds.Observe(total)
	}
	slow := e.obs.SlowThreshold > 0 && total >= e.obs.SlowThreshold
	if (req.Analyze || slow) && ph.tr == nil {
		// A warm execution that turned out slow or analyzed: reconstruct its
		// span tree from the boundary readings saved on the fast path.
		root := ph.materialize(start)
		ms := root.ChildAt("marginals", start)
		ms.EndDur(execDur)
		marginalAttrs(ms, chosen, sel, computed, p)
	}
	if req.Analyze {
		aspan := ph.root.Child("analyze")
		res.Analyzed, err = e.analyzePlan(snap, p)
		if err != nil {
			return nil, err
		}
		aspan.End()
		end = obs.Nanotime()
	}
	if ph.tr != nil {
		ph.root.EndAt(end)
		var exported *obs.SpanExport
		if req.Analyze {
			exported = ph.tr.Export()
			res.Trace = exported
		}
		if slow {
			if exported == nil {
				exported = ph.tr.Export()
			}
			e.obs.Slow.Add(obs.SlowQuery{
				Time:          time.Now(),
				Query:         p.queryText,
				Engine:        string(chosen),
				CacheHit:      hit,
				DurationNanos: int64(total),
				Trace:         exported,
			})
		}
	}
	return res, nil
}

// analyzePlan re-executes the compiled query's algebra with per-operator
// instrumentation (exec.Analyze) against the same snapshot the plan was
// keyed on. The run is independent of the cached artifact: it re-parses the
// cached query text and discards its answer, keeping only the timed tree.
func (e *Engine) analyzePlan(snap *catalog.Snapshot, p *plan) (*exec.PlanNode, error) {
	q, err := parser.ParseQuery(p.queryText)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	env, err := snap.Env(p.tables)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownTable, err)
	}
	an, err := exec.Analyze(q, env.ExecEnv(), e.algebraOptions().ExecOptions())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return an, nil
}

// prepare returns the cached plan for (query, kind) against the given
// catalog snapshot, or compiles and caches a new one. On a miss the trace is
// materialized at compile start (backfilling the snapshot and parse spans
// from ph's saved readings) so the operator core gets a live "compile" span;
// on a hit no span work happens at all — the caller reconstructs the warm
// span tree later if it needs one.
func (e *Engine) prepare(snap *catalog.Snapshot, queryText string, kind Kind, ph *phases) (*plan, bool, time.Duration, error) {
	q, err := parser.ParseQuery(queryText)
	if err != nil {
		return nil, false, 0, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	names := make([]string, 0, 2)
	for name := range ra.InputNames(q) {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if snap.Get(name) == nil {
			return nil, false, 0, fmt.Errorf("%w: %q (have %v)", ErrUnknownTable, name, snap.Names())
		}
	}
	key := cacheKey(queryText, kind, names, snap)

	e.mu.Lock()
	if el, ok := e.byKey[key]; ok {
		e.lru.MoveToFront(el)
		e.hits++
		e.mu.Unlock()
		return el.Value.(*plan), true, 0, nil
	}
	e.misses++
	e.mu.Unlock()

	start := obs.Nanotime()
	compileSpan := ph.materialize(start).ChildAt("compile", start)
	opts := e.algebraOptions()
	opts.Trace = compileSpan
	p, err := compile(q, queryText, kind, names, snap, key, opts)
	if err != nil {
		return nil, false, 0, err
	}
	prepDur := time.Duration(obs.Nanotime() - start)
	compileSpan.EndDur(prepDur)
	e.prepNanos.Add(uint64(prepDur))
	e.opMu.Lock()
	e.opTotals.Add(p.ops)
	e.opMu.Unlock()

	e.mu.Lock()
	// A concurrent miss may have compiled the same plan; keep the first so
	// every waiter shares one memoized artifact.
	if el, ok := e.byKey[key]; ok {
		e.lru.MoveToFront(el)
		e.mu.Unlock()
		return el.Value.(*plan), false, prepDur, nil
	}
	el := e.lru.PushFront(p)
	e.byKey[key] = el
	for _, name := range names {
		set := e.byTable[name]
		if set == nil {
			set = make(map[string]bool)
			e.byTable[name] = set
		}
		set[key] = true
	}
	for e.lru.Len() > e.opts.CacheSize {
		e.removeLocked(e.lru.Back(), &e.evictions)
	}
	e.mu.Unlock()
	return p, false, prepDur, nil
}

// invalidateTable drops every cached plan that reads the named table and
// returns how many were dropped.
func (e *Engine) invalidateTable(name string) int {
	e.mu.Lock()
	before := e.invalidations
	for key := range e.byTable[name] {
		if el, ok := e.byKey[key]; ok {
			e.removeLocked(el, &e.invalidations)
		}
	}
	n := int(e.invalidations - before)
	e.mu.Unlock()
	return n
}

// invalidateReplaced is invalidateTable for whole-table replacement (put,
// delete, catalog script reload): dropped plans are counted as maintenance
// recompiles forced by reason "tableReplaced".
func (e *Engine) invalidateReplaced(name string) {
	if n := e.invalidateTable(name); n > 0 {
		e.mnt.forcedReplaced.Add(uint64(n))
	}
}

// removeLocked removes one plan from the cache and reverse index,
// incrementing the given counter. Caller holds e.mu.
func (e *Engine) removeLocked(el *list.Element, counter *uint64) {
	p := e.lru.Remove(el).(*plan)
	delete(e.byKey, p.key)
	for _, name := range p.tables {
		if set := e.byTable[name]; set != nil {
			delete(set, p.key)
			if len(set) == 0 {
				delete(e.byTable, name)
			}
		}
	}
	*counter++
}

// cacheKey identifies a compiled plan: engine, query text, and the exact
// version of every referenced table in the snapshot. Replacing a table
// changes its version, so stale plans can never be served.
func cacheKey(queryText string, kind Kind, names []string, snap *catalog.Snapshot) string {
	return planKey(queryText, kind, names, snapVersions(names, snap))
}

// planKey is cacheKey over an explicit name→version map; incremental
// maintenance uses it to derive a maintained plan's next key from the plan's
// recorded versions with only the patched table's version bumped.
func planKey(queryText string, kind Kind, names []string, vers map[string]uint64) string {
	var b strings.Builder
	b.WriteString(string(kind))
	b.WriteByte(0)
	b.WriteString(queryText)
	for _, name := range names {
		fmt.Fprintf(&b, "\x00%s@%d", name, vers[name])
	}
	return b.String()
}

// snapVersions extracts the versions of the named tables from a snapshot
// (0 for absent tables, matching the historical key format).
func snapVersions(names []string, snap *catalog.Snapshot) map[string]uint64 {
	vers := make(map[string]uint64, len(names))
	for _, name := range names {
		if ent := snap.Get(name); ent != nil {
			vers[name] = ent.Version
		} else {
			vers[name] = 0
		}
	}
	return vers
}

// algebraOptions returns the operator-core options the engine compiles with:
// the engine's worker bound doubles as the morsel-parallelism bound of the
// batch engine, and every execution draws its extra morsel goroutines from
// one shared pool of that size — concurrent queries cannot multiply the
// per-query width into Workers² busy goroutines.
func (e *Engine) algebraOptions() ctable.Options {
	return ctable.Options{
		Simplify: true,
		Rewrite:  !e.opts.DisableRewrites,
		NoBatch:  e.opts.DisableBatch,
		Workers:  e.opts.Workers,
		Pool:     e.execPool,
	}
}

// compile runs the cold path: resolve tables, closed algebra on the shared
// operator core, candidate discovery. The physical plan is part of the
// compiled artifact: its rendering (exec.Explain) and its operator counters
// are cached on the plan, so hits surface the same plan text without
// re-planning.
func compile(q ra.Query, queryText string, kind Kind, names []string, snap *catalog.Snapshot, key string, opts ctable.Options) (*plan, error) {
	env, err := snap.Env(names)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownTable, err)
	}
	for _, name := range names {
		if !snap.Get(name).Probabilistic {
			return nil, fmt.Errorf("%w: table %q has no variable distributions; marginals are undefined (load it with dist directives)", ErrBadQuery, name)
		}
	}
	var ops exec.OpStats
	opts.Stats = &ops
	answer, err := pctable.EvalQueryEnvWithOptions(q, env, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	physical, err := exec.Explain(q, env.ExecEnv(), opts.ExecOptions())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	possible, err := answer.PossibleTuples()
	if err != nil {
		return nil, err
	}
	candidates := make([]candidate, 0, len(possible))
	for _, tp := range possible {
		lineage := answer.Lineage(tp)
		if _, isFalse := lineage.(condition.FalseCond); !isFalse {
			candidates = append(candidates, candidate{tuple: tp, lineage: lineage})
		}
	}
	return &plan{
		key:        key,
		queryText:  queryText,
		kind:       kind,
		tables:     names,
		query:      q,
		tableVers:  snapVersions(names, snap),
		answer:     answer,
		rendered:   answer.String(),
		physical:   physical,
		ops:        ops,
		candidates: candidates,
		sel:        selectEngine(candidates),
	}, nil
}

// Auto-selector thresholds (see Selection). Beyond autoMCComponentVars
// variables in one connected component of a SINGLE lineage, computing that
// tuple's exact marginal risks exponential blowup and sampling scales; from
// autoCircuitMinTuples tuples with cross-tuple sharing of at least
// autoCircuitMinShare, one shared circuit amortizes decomposition across the
// answer; otherwise the per-tuple d-tree's lower constant factors win.
const (
	autoMCComponentVars  = 44
	autoCircuitMinTuples = 16
	autoCircuitMinShare  = 1.25
)

// selectEngine derives the lineage-set statistics of a compiled plan and
// the engine=auto decision they imply. It runs once per plan compilation;
// the per-lineage variable sets are cached by hash-consed condition ID, so
// answers whose tuples share structure pay each subcondition's walk once.
func selectEngine(candidates []candidate) Selection {
	in := condition.NewInterner()
	allVars := make(map[condition.Variable]bool)
	varTotal := 0
	maxComp := 0
	for _, c := range candidates {
		vars := in.Vars(c.lineage)
		varTotal += len(vars)
		for _, x := range vars {
			allVars[x] = true
		}
		if n := maxLineageComponent(in, c.lineage, len(vars)); n > maxComp {
			maxComp = n
		}
	}
	sel := Selection{
		Tuples:           len(candidates),
		Vars:             len(allVars),
		MaxComponentVars: maxComp,
	}
	if sel.Vars > 0 {
		sel.SharingDegree = float64(varTotal) / float64(sel.Vars)
	}
	switch {
	case maxComp > autoMCComponentVars:
		sel.Chosen = KindMC
		sel.Reason = fmt.Sprintf("largest connected lineage component has %d variables (> %d): exact decomposition risks blowup, sampling scales", maxComp, autoMCComponentVars)
	case sel.Tuples >= autoCircuitMinTuples && sel.SharingDegree >= autoCircuitMinShare:
		sel.Chosen = KindCircuit
		sel.Reason = fmt.Sprintf("%d tuples with sharing degree %.2f (>= %.2f): one shared circuit amortizes decomposition", sel.Tuples, sel.SharingDegree, autoCircuitMinShare)
	default:
		sel.Chosen = KindDTree
		sel.Reason = fmt.Sprintf("%d tuples, sharing degree %.2f: per-tuple d-tree has the lowest constants", sel.Tuples, sel.SharingDegree)
	}
	return sel
}

// maxLineageComponent returns the variable count of the largest
// variable-connected component within ONE lineage. Top-level juncts of a
// conjunction or disjunction that share no variables decompose into
// independent subproblems (products; De Morgan products for disjunctions),
// so the hardness of one marginal is governed by its largest connected junct
// group — not by the lineage's total variable count, and never by variables
// shared with other tuples' lineages, which each evaluator treats as
// separate roots. Non-junction lineages count as one component.
func maxLineageComponent(in *condition.Interner, c condition.Condition, total int) int {
	var juncts []condition.Condition
	switch c := c.(type) {
	case condition.AndCond:
		juncts = c.Conds
	case condition.OrCond:
		juncts = c.Conds
	default:
		return total
	}
	parent := make(map[condition.Variable]condition.Variable, total)
	var find func(x condition.Variable) condition.Variable
	find = func(x condition.Variable) condition.Variable {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, j := range juncts {
		var root condition.Variable
		for _, x := range in.Vars(j) {
			if _, ok := parent[x]; !ok {
				parent[x] = x
			}
			rx := find(x)
			if root == "" {
				root = rx
			} else if rx != root {
				parent[rx] = root
			}
		}
	}
	maxComp := 0
	size := make(map[condition.Variable]int)
	for x := range parent {
		r := find(x)
		size[r]++
		if size[r] > maxComp {
			maxComp = size[r]
		}
	}
	return maxComp
}

// planCircuit compiles (once) and returns the plan's shared circuit,
// feeding the engine's circuit counters on the actual compilation.
func (e *Engine) planCircuit(p *plan) (*probcalc.Circuit, error) {
	p.circuitOnce.Do(func() {
		conds := make([]condition.Condition, len(p.candidates))
		for i, c := range p.candidates {
			conds[i] = c.lineage
		}
		p.circuit, p.circuitErr = probcalc.CompileAnswer(conds, p.answer)
		if p.circuitErr == nil {
			st := p.circuit.Stats()
			e.circuitCompiles.Add(1)
			e.circuitNodes.Add(uint64(st.Nodes))
			e.circuitShare.Add(uint64(st.SharedHits))
		}
	})
	return p.circuit, p.circuitErr
}

// circuitMarginals evaluates the plan's shared circuit under dists (nil
// selects the answer's own distributions), shaping the result like the
// other exact engines: zero-probability candidates are dropped and
// certainty is the CertainEps threshold.
func (e *Engine) circuitMarginals(p *plan, dists probcalc.DistProvider) ([]TupleAnswer, error) {
	circ, err := e.planCircuit(p)
	if err != nil {
		return nil, err
	}
	if dists == nil {
		dists = p.answer
	}
	probs, err := circ.EvalFloat(dists)
	if err != nil {
		return nil, err
	}
	out := make([]TupleAnswer, 0, len(p.candidates))
	for i, c := range p.candidates {
		pr := probs[i]
		if pr == 0 {
			continue
		}
		out = append(out, TupleAnswer{Tuple: c.tuple, P: pr, Certain: pr >= 1-CertainEps})
	}
	return out, nil
}

// overrideTable builds the what-if view of the plan's answer from the
// request's distribution overrides (nil when the request has none). Value
// keys are parsed as literals; each override must form a probability
// distribution over a subset of the variable's declared support —
// violations are ErrBadQuery, because the circuit's Shannon branches (and
// the c-table's domains) were fixed at compile time.
func overrideTable(p *plan, dists map[string]map[string]float64) (*pctable.PCTable, error) {
	if len(dists) == 0 {
		return nil, nil
	}
	over := make(map[condition.Variable]*prob.Space, len(dists))
	for name, outcomes := range dists {
		m := make(map[value.Value]float64, len(outcomes))
		for lit, pr := range outcomes {
			v, err := parser.ParseValueLiteral(lit)
			if err != nil {
				return nil, fmt.Errorf("%w: distributions[%s]: %v", ErrBadQuery, name, err)
			}
			m[v] = pr
		}
		sp, err := prob.NewValueSpace(m)
		if err != nil {
			return nil, fmt.Errorf("%w: distributions[%s]: %v", ErrBadQuery, name, err)
		}
		over[condition.Variable(name)] = sp
	}
	t, err := p.answer.WithDists(over)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return t, nil
}

// whatIfMarginals computes marginals under request-supplied distribution
// overrides. Results are never memoized on the plan — the override is
// per-request state — but the circuit path reuses the plan's compiled
// circuit, so a what-if over a prepared answer is a pure re-weighting pass
// with no decomposition at all.
func (e *Engine) whatIfMarginals(p *plan, chosen Kind, over *pctable.PCTable, req Request) ([]TupleAnswer, error) {
	switch chosen {
	case KindCircuit:
		return e.circuitMarginals(p, over)
	case KindMC:
		return sampledMarginals(p, over, req)
	}
	out := make([]TupleAnswer, 0, len(p.candidates))
	var ev *probcalc.Evaluator
	if chosen == KindDTree {
		ev = probcalc.New(over)
	}
	for _, c := range p.candidates {
		var (
			pr  float64
			err error
		)
		if ev != nil {
			pr, err = ev.Probability(c.lineage)
		} else {
			pr, err = probcalc.EnumProbability(c.lineage, over)
		}
		if err != nil {
			return nil, err
		}
		if pr == 0 {
			continue
		}
		out = append(out, TupleAnswer{Tuple: c.tuple, P: pr, Certain: pr >= 1-CertainEps})
	}
	if ev != nil {
		st := ev.Stats()
		e.memoHits.Add(uint64(st.MemoHits))
		e.memoMisses.Add(uint64(st.MemoMisses))
	}
	return out, nil
}

// exactMarginals computes every candidate's marginal with an exact engine.
// The dtree path shares one decomposition evaluator (and its memo cache)
// across candidates and reports the decomposition's shape alongside the
// answers (zero Stats for enum).
func exactMarginals(p *plan, kind Kind) ([]TupleAnswer, probcalc.Stats, error) {
	out := make([]TupleAnswer, 0, len(p.candidates))
	var ev *probcalc.Evaluator
	if kind == KindDTree {
		ev = probcalc.New(p.answer)
	}
	for _, c := range p.candidates {
		var (
			prob float64
			err  error
		)
		if kind == KindDTree {
			prob, err = ev.Probability(c.lineage)
		} else {
			prob, err = p.answer.ConditionProbabilityEnum(c.lineage)
		}
		if err != nil {
			return nil, probcalc.Stats{}, err
		}
		if prob == 0 {
			// Row-pattern candidate with unsatisfiable lineage.
			continue
		}
		out = append(out, TupleAnswer{Tuple: c.tuple, P: prob, Certain: prob >= 1-CertainEps})
	}
	var st probcalc.Stats
	if ev != nil {
		st = ev.Stats()
	}
	return out, st, nil
}

// sampledMarginals estimates every candidate's marginal by Monte-Carlo over
// table t (the plan's answer, or its what-if view). A fresh sampler per
// request keeps concurrent executions independent and deterministic for a
// fixed (seed, samples, workers).
func sampledMarginals(p *plan, t *pctable.PCTable, req Request) ([]TupleAnswer, error) {
	samples := req.Samples
	if samples <= 0 {
		samples = 10000
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 1
	}
	sampler, err := pctable.NewSampler(t, seed)
	if err != nil {
		return nil, err
	}
	out := make([]TupleAnswer, 0, len(p.candidates))
	for _, c := range p.candidates {
		est, se, err := sampler.EstimateConditionProbabilityParallel(c.lineage, samples, workers)
		if err != nil {
			return nil, err
		}
		// Certainty is a logical property; a sampled estimate of 1 is not
		// proof. Only a lineage that simplified to the constant true makes
		// a Monte-Carlo answer certain.
		_, isTrue := c.lineage.(condition.TrueCond)
		out = append(out, TupleAnswer{Tuple: c.tuple, P: est, StdErr: se, Certain: isTrue})
	}
	return out, nil
}
