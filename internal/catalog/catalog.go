// Package catalog is a concurrency-safe registry of named c-tables and
// pc-tables — the resident state of the uncertaind query service.
//
// The catalog is versioned: every mutation bumps a global version and stamps
// the affected entry with it. Readers never touch the live map; they take a
// Snapshot, an immutable view with a consistent version, so an in-flight
// query keeps seeing the catalog as it was when the query started while
// tables are added or replaced concurrently. Per-entry versions let a plan
// cache key compiled artifacts by exactly the tables a query reads, so
// replacing one table invalidates only the plans that depend on it.
package catalog

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"uncertaindb/internal/parser"
	"uncertaindb/internal/pctable"
)

// Entry is one named table of the catalog. Entries are immutable after
// registration: Put copies the table it is handed, and callers must not
// mutate a table obtained from a snapshot.
type Entry struct {
	// Name is the relation name queries use to reference the table.
	Name string
	// Table is the pc-table. For a plain (incomplete, non-probabilistic)
	// c-table it carries no distributions and Probabilistic is false.
	Table *pctable.PCTable
	// Probabilistic reports whether the table has variable distributions
	// attached (every variable, validated at registration).
	Probabilistic bool
	// Version is the catalog version at which this entry was installed.
	Version uint64
}

// Catalog is the mutable, concurrency-safe registry. The zero value is not
// usable; call New.
type Catalog struct {
	mu      sync.RWMutex
	version uint64
	tables  map[string]*Entry
}

// New returns an empty catalog at version 0.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Entry)}
}

// Put registers (or replaces) the table under the given name and returns
// the new catalog version. The table is copied, so later mutations by the
// caller do not leak into the catalog. A table with distributions on some
// but not all of its variables is rejected — it is neither a usable c-table
// nor a valid pc-table.
func (c *Catalog) Put(name string, t *pctable.PCTable) (uint64, error) {
	probabilistic, err := validate(name, t)
	if err != nil {
		return 0, err
	}
	cp := t.Copy()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	c.tables[name] = &Entry{Name: name, Table: cp, Probabilistic: probabilistic, Version: c.version}
	return c.version, nil
}

// PutParsed registers a table parsed by internal/parser under its declared
// name.
func (c *Catalog) PutParsed(pt *parser.ParsedTable) (uint64, error) {
	return c.Put(pt.Name, pt.PCTable)
}

// LoadScript parses a catalog script (one or more table descriptions, see
// parser.ParseCatalog) and registers every table, returning the names in
// declaration order. Loading is all-or-nothing: every table is validated
// before any is registered, so on error the catalog is unchanged.
func (c *Catalog) LoadScript(r io.Reader) ([]string, error) {
	parsed, err := parser.ParseCatalog(r)
	if err != nil {
		return nil, err
	}
	for _, pt := range parsed {
		if _, err := validate(pt.Name, pt.PCTable); err != nil {
			return nil, err
		}
	}
	names := make([]string, 0, len(parsed))
	for _, pt := range parsed {
		if _, err := c.PutParsed(pt); err != nil {
			return nil, err
		}
		names = append(names, pt.Name)
	}
	return names, nil
}

// validate checks a (name, table) pair for registration and reports whether
// the table is probabilistic. It never mutates anything, so LoadScript can
// pre-validate a whole script before registering its first table.
func validate(name string, t *pctable.PCTable) (probabilistic bool, err error) {
	if name == "" {
		return false, fmt.Errorf("catalog: table name must be non-empty")
	}
	if t == nil {
		return false, fmt.Errorf("catalog: table %s is nil", name)
	}
	probabilistic = t.Validate() == nil
	if !probabilistic && hasAnyDist(t) {
		return false, fmt.Errorf("catalog: table %s has distributions for some variables but not all: %v", name, t.Validate())
	}
	return probabilistic, nil
}

// Drop removes the table of that name, if present, and reports whether it
// existed. Dropping bumps the version, so snapshots taken before keep the
// table while later plans see it gone.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return false
	}
	c.version++
	delete(c.tables, name)
	return true
}

// Version returns the current catalog version (0 for an empty, untouched
// catalog).
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Snapshot returns an immutable view of the catalog: a consistent
// (version, entries) pair. Taking a snapshot is O(#tables) map copy; the
// entries themselves are shared and immutable.
func (c *Catalog) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tables := make(map[string]*Entry, len(c.tables))
	for name, e := range c.tables {
		tables[name] = e
	}
	return &Snapshot{version: c.version, tables: tables}
}

func hasAnyDist(t *pctable.PCTable) bool {
	for _, x := range t.Vars() {
		if t.Dist(x) != nil {
			return true
		}
	}
	return false
}

// Snapshot is an immutable view of the catalog at one version.
type Snapshot struct {
	version uint64
	tables  map[string]*Entry
}

// Version returns the catalog version the snapshot was taken at.
func (s *Snapshot) Version() uint64 { return s.version }

// Get returns the entry of that name, or nil if absent.
func (s *Snapshot) Get(name string) *Entry { return s.tables[name] }

// Len returns the number of tables in the snapshot.
func (s *Snapshot) Len() int { return len(s.tables) }

// Names returns the table names in sorted order.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Env resolves the given relation names against the snapshot, returning a
// pc-table environment for query evaluation. Unknown names are an error.
func (s *Snapshot) Env(names []string) (pctable.Env, error) {
	env := make(pctable.Env, len(names))
	for _, name := range names {
		e := s.tables[name]
		if e == nil {
			return nil, fmt.Errorf("catalog: unknown table %q (have %v)", name, s.Names())
		}
		env[name] = e.Table
	}
	return env, nil
}
