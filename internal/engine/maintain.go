// Incremental view maintenance: when a table receives a row-level patch
// (wal.KindPatch), every cached plan that reads it is updated in place
// instead of being invalidated. The maintained plan is byte-identical to
// what a fresh compile at the new catalog version would produce — same
// rendered answer, same candidate tuples and lineage syntax, same marginals
// — because every step either re-runs the exact operator-core code path a
// compile would run, or replays the operator fold the compile's operators
// would have applied to the delta rows.
//
// Three outcomes per (patch, plan) pair:
//
//   - Delta append: for insert-only patches against order-safe plan shapes
//     (the patched table referenced once, every ancestor a selection, a
//     cross/join with the table on the probe/left spine, or a union with the
//     table on the right spine, plus at most one top-level projection), the
//     appended base rows are pushed through the plan's delta query — σ and
//     join apply pointwise, so Δ(answer) = plan(ΔT) — and the resulting rows
//     are appended to the materialized answer (folded into the top
//     projection's groups when present, replaying π̄'s disjunction fold).
//
//   - Re-evaluation: any other SPJU shape re-runs the full operator core on
//     the patched environment (the same call a compile makes, so the answer
//     is identical by construction) and diffs the old and new answer rows to
//     find the suspect middle; candidates and marginals outside the suspect
//     window are carried forward untouched.
//
//   - Forced recompile: non-monotone queries (difference/intersection),
//     patches that add distributions, auto-selector flips, version races and
//     maintenance errors fall back to plain invalidation, counted by reason.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"uncertaindb/internal/catalog"
	"uncertaindb/internal/condition"
	"uncertaindb/internal/exec"
	"uncertaindb/internal/obs"
	"uncertaindb/internal/pctable"
	"uncertaindb/internal/probcalc"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/relation"
	"uncertaindb/internal/value"
	"uncertaindb/internal/wal"
)

// MaintenanceStats is the public snapshot of the incremental-maintenance
// counters: how many patches ran, how many plans were maintained in place
// (split by strategy), how many memoized marginals survived, and how many
// recompiles were forced, by fallback reason.
type MaintenanceStats struct {
	// PatchesApplied counts row-level patches processed by this engine
	// (leader PatchTable calls and follower KindPatch records alike).
	PatchesApplied uint64 `json:"patchesApplied"`
	// PlansMaintained counts cached plans updated in place and re-keyed
	// (recompiles avoided); DeltaAppends and Reevaluations split it by
	// strategy.
	PlansMaintained uint64 `json:"plansMaintained"`
	DeltaAppends    uint64 `json:"deltaAppends"`
	Reevaluations   uint64 `json:"reevaluations"`
	// MarginalsReused counts memoized tuple marginals carried to a
	// maintained plan unchanged; MarginalsRefreshed counts tuples whose
	// lineage touched changed rows and was re-evaluated.
	MarginalsReused    uint64 `json:"marginalsReused"`
	MarginalsRefreshed uint64 `json:"marginalsRefreshed"`
	// Forced* count plans dropped instead of maintained, by reason:
	// non-monotone queries (difference/intersection), whole-table
	// replacement (put/delete/reload, and patch races against concurrent
	// mutations), an engine=auto selection flip, patches that change the
	// distribution set, and maintenance errors.
	ForcedNonMonotone      uint64 `json:"forcedNonMonotone"`
	ForcedTableReplaced    uint64 `json:"forcedTableReplaced"`
	ForcedSelectionChanged uint64 `json:"forcedSelectionChanged"`
	ForcedDistsChanged     uint64 `json:"forcedDistsChanged"`
	ForcedError            uint64 `json:"forcedError"`
}

// maintCounters is the engine-internal atomic twin of MaintenanceStats.
type maintCounters struct {
	patches, maintained, appends, reevals atomic.Uint64
	margReused, margRefreshed             atomic.Uint64
	forcedNonMonotone, forcedReplaced     atomic.Uint64
	forcedSelection, forcedDists          atomic.Uint64
	forcedError                           atomic.Uint64
}

func (m *maintCounters) snapshot() MaintenanceStats {
	return MaintenanceStats{
		PatchesApplied:         m.patches.Load(),
		PlansMaintained:        m.maintained.Load(),
		DeltaAppends:           m.appends.Load(),
		Reevaluations:          m.reevals.Load(),
		MarginalsReused:        m.margReused.Load(),
		MarginalsRefreshed:     m.margRefreshed.Load(),
		ForcedNonMonotone:      m.forcedNonMonotone.Load(),
		ForcedTableReplaced:    m.forcedReplaced.Load(),
		ForcedSelectionChanged: m.forcedSelection.Load(),
		ForcedDistsChanged:     m.forcedDists.Load(),
		ForcedError:            m.forcedError.Load(),
	}
}

// Typed fallback reasons for forced recompiles.
const (
	reasonNonMonotone      = "nonmonotone"
	reasonTableReplaced    = "tableReplaced"
	reasonSelectionChanged = "selectionChanged"
	reasonDistsChanged     = "distsChanged"
	reasonError            = "error"
)

func (m *maintCounters) forced(reason string) {
	switch reason {
	case reasonNonMonotone:
		m.forcedNonMonotone.Add(1)
	case reasonSelectionChanged:
		m.forcedSelection.Add(1)
	case reasonDistsChanged:
		m.forcedDists.Add(1)
	case reasonError:
		m.forcedError.Add(1)
	default:
		m.forcedReplaced.Add(1)
	}
}

// deltaRelName binds the delta table in the delta query's environment. The
// NUL byte cannot appear in a parsed relation name, so it never collides.
const deltaRelName = "\x00delta"

// maintDiff describes how the maintained answer's rows relate to the old
// answer's, so rebuildPlan can splice the plan's cached render state instead
// of re-rendering the whole answer. Append mode: rows[0:oldLen] carry over
// except the indices in changed (rewritten projection groups), and rows past
// oldLen are new (changed also contains them when a top projection folded).
// Reeval mode: the first pre and last suf rows carry over, the middle is
// new. groupIndex, when non-nil, is the successor plan's top-projection
// group index (canonical terms key -> row index), already extended with the
// delta's groups; it is a fresh map, never the predecessor's.
type maintDiff struct {
	mode       string // "append" or "reeval"
	oldLen     int    // append: row count of the old answer
	changed    map[int]bool
	pre, suf   int // reeval: shared prefix/suffix lengths
	groupIndex map[string]int
}

// maintained is the outcome of maintaining one plan.
type maintained struct {
	plan      *plan
	mode      string // "append" or "reeval"
	deltaRows int    // suspect/changed answer rows
	reused    int    // marginals carried unchanged
	refreshed int    // marginals re-evaluated
}

// maintainTable updates every cached plan reading name after a row-level
// patch bumped it to version. Plans that cannot be maintained are dropped
// (forced recompile) with a typed reason; the rest are re-keyed in place so
// the next execution at the new catalog version hits the cache.
func (e *Engine) maintainTable(name string, version uint64, ap *wal.AppliedPatch) {
	e.mnt.patches.Add(1)
	start := obs.Nanotime()
	tr := e.obs.StartTraceAt("maintain", start)
	var root obs.SpanRef
	if tr != nil {
		root = tr.Root()
		root.SetStr("table", fmt.Sprintf("%s@%d", name, version))
	}

	e.mu.Lock()
	keys := make([]string, 0, len(e.byTable[name]))
	for key := range e.byTable[name] {
		keys = append(keys, key)
	}
	e.mu.Unlock()
	sort.Strings(keys) // deterministic maintenance order

	var snap *catalog.Snapshot
	if len(keys) > 0 {
		snap = e.cat.Snapshot()
	}
	for _, key := range keys {
		e.mu.Lock()
		var p *plan
		if el, ok := e.byKey[key]; ok {
			p = el.Value.(*plan)
		}
		e.mu.Unlock()
		if p == nil {
			continue // concurrently evicted
		}
		sp := root.Child("plan")
		m, reason := e.maintainPlan(p, name, version, ap, snap)
		if m == nil {
			e.dropMaintained(key, reason)
			sp.SetStr("outcome", "invalidate:"+reason)
			sp.End()
			continue
		}
		e.swapPlan(key, m.plan)
		e.mnt.maintained.Add(1)
		if m.mode == "append" {
			e.mnt.appends.Add(1)
		} else {
			e.mnt.reevals.Add(1)
		}
		e.mnt.margReused.Add(uint64(m.reused))
		e.mnt.margRefreshed.Add(uint64(m.refreshed))
		sp.SetStr("outcome", m.mode)
		sp.SetInt("deltaRows", int64(m.deltaRows))
		sp.SetInt("marginalsReused", int64(m.reused))
		sp.SetInt("marginalsRefreshed", int64(m.refreshed))
		sp.End()
	}

	end := obs.Nanotime()
	total := time.Duration(end - start)
	e.applySeconds.Observe(total)
	if tr != nil {
		root.EndAt(end)
		if e.obs.SlowThreshold > 0 && total >= e.obs.SlowThreshold {
			e.obs.Slow.Add(obs.SlowQuery{
				Time:          time.Now(),
				Query:         "PATCH " + name,
				Engine:        "maintenance",
				DurationNanos: int64(total),
				Trace:         tr.Export(),
			})
		}
	}
	e.obs.FinishTrace(tr)
}

// dropMaintained invalidates one plan by cache key, attributing the drop to
// the given maintenance fallback reason.
func (e *Engine) dropMaintained(key, reason string) {
	e.mu.Lock()
	if el, ok := e.byKey[key]; ok {
		e.removeLocked(el, &e.invalidations)
		e.mnt.forced(reason)
	}
	e.mu.Unlock()
}

// swapPlan replaces the cached plan at oldKey with newp (re-keying the LRU
// element in place, keeping its recency). If a concurrent compile already
// cached a plan under newp.key, the first insert wins and the stale old
// entry is dropped.
func (e *Engine) swapPlan(oldKey string, newp *plan) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.byKey[oldKey]
	if !ok {
		return // concurrently evicted or invalidated; nothing to swap
	}
	if _, exists := e.byKey[newp.key]; exists {
		e.removeLocked(el, &e.invalidations)
		return
	}
	old := el.Value.(*plan)
	delete(e.byKey, oldKey)
	for _, t := range old.tables {
		if set := e.byTable[t]; set != nil {
			delete(set, oldKey)
		}
	}
	el.Value = newp
	e.byKey[newp.key] = el
	for _, t := range newp.tables {
		set := e.byTable[t]
		if set == nil {
			set = make(map[string]bool)
			e.byTable[t] = set
		}
		set[newp.key] = true
	}
}

// maintainPlan builds the maintained successor of p after a patch moved
// table name to version. A nil result means the plan must be dropped; the
// string is then the typed fallback reason.
func (e *Engine) maintainPlan(p *plan, name string, version uint64, ap *wal.AppliedPatch, snap *catalog.Snapshot) (*maintained, string) {
	// The plan must have been compiled (or last maintained) against exactly
	// the table state the patch was applied to, and the snapshot must still
	// show the versions the maintained plan will be keyed on — a concurrent
	// mutation (second patch, put, delete) makes the plan stale, which is
	// ordinary replacement.
	if pv, ok := p.tableVers[name]; !ok || pv != ap.OldVersion {
		return nil, reasonTableReplaced
	}
	for _, t := range p.tables {
		want := p.tableVers[t]
		if t == name {
			want = version
		}
		if ent := snap.Get(t); ent == nil || ent.Version != want {
			return nil, reasonTableReplaced
		}
	}
	if hasNonMonotone(p.query) {
		return nil, reasonNonMonotone
	}
	if len(ap.AddedDists) > 0 {
		return nil, reasonDistsChanged
	}
	env, err := snap.Env(p.tables)
	if err != nil {
		return nil, reasonError
	}

	var (
		newAnswer              *pctable.PCTable
		oldSuspect, newSuspect []exec.Row
		diff                   *maintDiff
	)
	if ap.InsertOnly() {
		newAnswer, newSuspect, oldSuspect, diff, err = e.deltaAppend(p, name, ap, env)
		if err != nil {
			return nil, reasonError
		}
	}
	if newAnswer == nil {
		newAnswer, oldSuspect, newSuspect, diff, err = e.reevaluate(p, env)
		if err != nil {
			return nil, reasonError
		}
	}
	m, reason := e.rebuildPlan(p, name, version, newAnswer, oldSuspect, newSuspect, diff)
	if m == nil {
		return nil, reason
	}
	m.mode = diff.mode
	m.deltaRows = len(oldSuspect) + len(newSuspect)
	return m, ""
}

// hasNonMonotone reports whether q contains a difference or intersection —
// the non-monotone operators deltas cannot propagate through (an inserted
// right-side tuple can retract answer tuples).
func hasNonMonotone(q ra.Query) bool {
	switch q := q.(type) {
	case ra.DiffQ, ra.IntersectQ:
		return true
	case ra.SelectQ:
		return hasNonMonotone(q.Input)
	case ra.ProjectQ:
		return hasNonMonotone(q.Input)
	case ra.CrossQ:
		return hasNonMonotone(q.Left) || hasNonMonotone(q.Right)
	case ra.JoinQ:
		return hasNonMonotone(q.Left) || hasNonMonotone(q.Right)
	case ra.UnionQ:
		return hasNonMonotone(q.Left) || hasNonMonotone(q.Right)
	default:
		return false
	}
}

// countBaseRefs counts occurrences of the named base relation in q.
func countBaseRefs(q ra.Query, name string) int {
	if b, ok := q.(ra.BaseRel); ok {
		if b.Name == name {
			return 1
		}
		return 0
	}
	n := 0
	for _, c := range children(q) {
		n += countBaseRefs(c, name)
	}
	return n
}

// bindBaseRels copies into denv the env bindings of every base relation
// referenced by q (the delta relation, bound separately, is absent from env
// and skipped).
func bindBaseRels(q ra.Query, env, denv pctable.Env) {
	if b, ok := q.(ra.BaseRel); ok {
		if t, ok := env[b.Name]; ok {
			denv[b.Name] = t
		}
		return
	}
	for _, c := range children(q) {
		bindBaseRels(c, env, denv)
	}
}

// children mirrors ra.Query's internal child accessor for the walks above.
func children(q ra.Query) []ra.Query {
	switch q := q.(type) {
	case ra.SelectQ:
		return []ra.Query{q.Input}
	case ra.ProjectQ:
		return []ra.Query{q.Input}
	case ra.CrossQ:
		return []ra.Query{q.Left, q.Right}
	case ra.JoinQ:
		return []ra.Query{q.Left, q.Right}
	case ra.UnionQ:
		return []ra.Query{q.Left, q.Right}
	case ra.DiffQ:
		return []ra.Query{q.Left, q.Right}
	case ra.IntersectQ:
		return []ra.Query{q.Left, q.Right}
	default:
		return nil
	}
}

// deltaQuery rewrites plan tree q into its delta tree with respect to base
// table name: the tree that, evaluated with the delta table bound to
// deltaRelName, produces exactly the rows the full plan appends at its
// output tail. ok=false means the shape is not order-safe for appends:
// the output rows the new base rows generate would interleave with (or
// merge into) existing output rows rather than extend them.
//
// Order safety follows the operator core's streaming order: selections are
// pointwise; crosses and joins enumerate probe-major with the LEFT input as
// the probe side, so appended left rows extend the output tail while
// appended right (build-side) rows interleave; unions emit left rows then
// right rows, so only right-side appends land at the tail. Projections
// merge groups (handled only at the top level, by deltaAppend's group
// fold), and difference/intersection are rejected earlier as non-monotone.
func deltaQuery(q ra.Query, name string, arities ra.ArityEnv) (ra.Query, bool) {
	switch q := q.(type) {
	case ra.BaseRel:
		if q.Name != name {
			return nil, false
		}
		return ra.BaseRel{Name: deltaRelName}, true
	case ra.SelectQ:
		d, ok := deltaQuery(q.Input, name, arities)
		if !ok {
			return nil, false
		}
		return ra.SelectQ{Pred: q.Pred, Input: d}, true
	case ra.CrossQ:
		if countBaseRefs(q.Left, name) != 1 {
			return nil, false
		}
		d, ok := deltaQuery(q.Left, name, arities)
		if !ok {
			return nil, false
		}
		return ra.CrossQ{Left: d, Right: q.Right}, true
	case ra.JoinQ:
		if countBaseRefs(q.Left, name) != 1 {
			return nil, false
		}
		d, ok := deltaQuery(q.Left, name, arities)
		if !ok {
			return nil, false
		}
		return ra.JoinQ{Left: d, Right: q.Right, Pred: q.Pred}, true
	case ra.UnionQ:
		if countBaseRefs(q.Right, name) != 1 {
			return nil, false
		}
		d, ok := deltaQuery(q.Right, name, arities)
		if !ok {
			return nil, false
		}
		// The left side contributes nothing to the delta, but the union
		// operator's per-row condition re-simplification must still apply to
		// the delta rows — replace the left input with an EMPTY constant of
		// the same arity rather than dropping the node (so the non-delta
		// subtree is never executed, yet the operator runs).
		a, err := ra.Arity(q.Left, arities)
		if err != nil {
			return nil, false
		}
		return ra.UnionQ{Left: ra.ConstRel{Rel: relation.New(a)}, Right: d}, true
	default:
		// Non-top projections merge into existing groups; constants contain
		// no delta.
		return nil, false
	}
}

// deltaAppend attempts the delta-append maintenance strategy: runs the
// plan's delta query over the appended base rows and extends the
// materialized answer in place (replaying the top projection's group fold
// when the plan has one). An all-nil return means the plan shape is not
// order-safe — the caller falls back to re-evaluation. The second return
// value holds the new/changed answer rows, the third the old versions of
// changed projection groups (empty without a top projection), the fourth
// the row-level diff rebuildPlan splices the cached render state with.
func (e *Engine) deltaAppend(p *plan, name string, ap *wal.AppliedPatch, env pctable.Env) (*pctable.PCTable, []exec.Row, []exec.Row, *maintDiff, error) {
	arities := make(ra.ArityEnv, len(env))
	for n, t := range env {
		arities[n] = t.Arity()
	}
	q := p.query
	if !e.opts.DisableRewrites {
		// The materialized answer's row order is that of the REWRITTEN plan;
		// order safety and the delta tree must be judged on the same tree the
		// operator core executed.
		q = exec.Rewrite(q, arities)
	}
	if countBaseRefs(q, name) != 1 {
		return nil, nil, nil, nil, nil // self-joins interleave; re-evaluate
	}
	var topCols []int
	if pq, ok := q.(ra.ProjectQ); ok {
		topCols = pq.Cols
		q = pq.Input
	}
	dq, ok := deltaQuery(q, name, arities)
	if !ok {
		return nil, nil, nil, nil, nil
	}

	// Bind the delta table: the appended base rows under the patched table's
	// distributions and declared domains (identical to the pre-patch ones
	// for insert-only patches).
	tnew := env[name]
	rows := tnew.Table().Rows()
	if ap.AddedRows > len(rows) {
		return nil, nil, nil, nil, fmt.Errorf("engine: patch added %d rows but table has %d", ap.AddedRows, len(rows))
	}
	delta := tnew.CloneWithRows(rows[len(rows)-ap.AddedRows:])
	// Bind only the relations the delta tree actually references: the operator
	// core sizes per-run state (term dictionary, encode buffers) from the total
	// rows of the environment, so handing it the full patched table would make
	// every delta run O(table) — the delta tree replaced that base relation
	// with the delta binding, which holds just the appended rows.
	denv := make(pctable.Env, len(env)+1)
	bindBaseRels(dq, env, denv)
	denv[deltaRelName] = delta

	opts := e.algebraOptions()
	opts.Rewrite = false // dq mirrors the already-rewritten plan shape
	res, err := exec.Run(dq, denv.ExecEnv(), opts.ExecOptions())
	if err != nil {
		return nil, nil, nil, nil, err
	}

	oldRows := p.answer.Table().Rows()
	if topCols == nil {
		// Pure append: the delta rows are the full plan's appended output.
		merged := make([]exec.Row, 0, len(oldRows)+len(res.Rows))
		merged = append(merged, oldRows...)
		merged = append(merged, res.Rows...)
		diff := &maintDiff{mode: "append", oldLen: len(oldRows)}
		return p.answer.CloneWithRows(merged), res.Rows, nil, diff, nil
	}

	// Top-level projection: replay π̄'s fold over the delta input rows.
	// The old answer rows ARE the fold state after the old input — continue
	// folding the delta rows with the operator's exact per-row step:
	// merge into an existing group by disjoining conditions, or open a new
	// group at the tail. Group keys are canonical term identities (stable
	// across calls, unlike interner keys), so the index survives on the plan
	// and only the delta rows are keyed per patch; the cached index is
	// copied, never extended in place — the old plan stays readable by
	// concurrent maintainers.
	index := make(map[string]int, len(oldRows)+len(res.Rows))
	if p.groupIndex != nil {
		for k, g := range p.groupIndex {
			index[k] = g
		}
	} else {
		for i, r := range oldRows {
			index[wal.TermsKey(r.Terms)] = i
		}
	}
	out := make([]exec.Row, len(oldRows), len(oldRows)+len(res.Rows))
	copy(out, oldRows)
	var oldChanged []exec.Row
	changed := make(map[int]bool)
	for _, r := range res.Rows {
		terms := make([]condition.Term, len(topCols))
		for j, c := range topCols {
			terms[j] = r.Terms[c]
		}
		key := wal.TermsKey(terms)
		if g, ok := index[key]; ok {
			if !changed[g] {
				changed[g] = true
				oldChanged = append(oldChanged, out[g])
			}
			out[g] = exec.Row{Terms: out[g].Terms, Cond: condition.Simplify(condition.Or(out[g].Cond, r.Cond))}
			continue
		}
		g := len(out)
		index[key] = g
		changed[g] = true
		out = append(out, exec.Row{Terms: terms, Cond: condition.Simplify(r.Cond)})
	}
	idxs := make([]int, 0, len(changed))
	for g := range changed {
		idxs = append(idxs, g)
	}
	sort.Ints(idxs)
	newChanged := make([]exec.Row, 0, len(idxs))
	for _, g := range idxs {
		newChanged = append(newChanged, out[g])
	}
	diff := &maintDiff{mode: "append", oldLen: len(oldRows), changed: changed, groupIndex: index}
	return p.answer.CloneWithRows(out), newChanged, oldChanged, diff, nil
}

// reevaluate runs the plan's full query on the patched environment — the
// identical operator-core call a fresh compile makes, so the answer table
// is byte-identical to a recompile by construction — and diffs old and new
// answer rows by canonical row identity, trimming the common prefix and
// suffix. Rows outside the differing middle contribute identically (and in
// identical order) to every tuple's lineage, so only tuples producible by
// the suspect middle need recomputation.
func (e *Engine) reevaluate(p *plan, env pctable.Env) (*pctable.PCTable, []exec.Row, []exec.Row, *maintDiff, error) {
	newAnswer, err := pctable.EvalQueryEnvWithOptions(p.query, env, e.algebraOptions())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	oldRows := p.answer.Table().Rows()
	newRows := newAnswer.Table().Rows()
	pre := 0
	for pre < len(oldRows) && pre < len(newRows) && sameAnswerRow(oldRows[pre], newRows[pre]) {
		pre++
	}
	suf := 0
	for suf < len(oldRows)-pre && suf < len(newRows)-pre &&
		sameAnswerRow(oldRows[len(oldRows)-1-suf], newRows[len(newRows)-1-suf]) {
		suf++
	}
	diff := &maintDiff{mode: "reeval", oldLen: len(oldRows), pre: pre, suf: suf}
	return newAnswer, oldRows[pre : len(oldRows)-suf], newRows[pre : len(newRows)-suf], diff, nil
}

// sameAnswerRow compares two answer rows by canonical row identity — the
// same exact-syntax key the patch layer uses for base rows.
func sameAnswerRow(a, b exec.Row) bool {
	return wal.RowKey(a.Terms, a.Cond) == wal.RowKey(b.Terms, b.Cond)
}

// rebuildPlan assembles the maintained successor plan: candidates affected
// by the suspect rows get their lineage (and, when memoized, marginal)
// recomputed against the new answer; everything else is carried forward.
func (e *Engine) rebuildPlan(p *plan, name string, version uint64, newAnswer *pctable.PCTable, oldSuspect, newSuspect []exec.Row, diff *maintDiff) (*maintained, string) {
	// Affected candidate keys: every tuple the suspect rows can produce,
	// under the old answer's distributions for removed/changed rows and the
	// new answer's for added/changed rows.
	affected := make(map[string]value.Tuple)
	collect := func(ctx *pctable.PCTable, rows []exec.Row) error {
		if len(rows) == 0 {
			return nil
		}
		tuples, err := ctx.CloneWithRows(rows).PossibleTuples()
		if err != nil {
			return err
		}
		for _, tp := range tuples {
			affected[tp.Key()] = tp
		}
		return nil
	}
	if err := collect(p.answer, oldSuspect); err != nil {
		return nil, reasonError
	}
	if err := collect(newAnswer, newSuspect); err != nil {
		return nil, reasonError
	}
	affKeys := make([]string, 0, len(affected))
	for k := range affected {
		affKeys = append(affKeys, k)
	}
	sort.Strings(affKeys)

	// Merge old candidates (sorted by tuple key) with the affected keys:
	// unaffected candidates carry over verbatim — their matching rows are
	// all outside the suspect middle, so their lineage is unchanged —
	// while affected keys are recomputed from the new answer (a lineage
	// that simplifies to false drops the candidate, covering deletions).
	isAffected := make(map[string]bool, len(affKeys))
	cands := make([]candidate, 0, len(p.candidates)+len(affKeys))
	i, j := 0, 0
	for i < len(p.candidates) || j < len(affKeys) {
		var ck string
		if i < len(p.candidates) {
			ck = p.candidates[i].tuple.Key()
		}
		var tp value.Tuple
		switch {
		case j >= len(affKeys) || (i < len(p.candidates) && ck < affKeys[j]):
			cands = append(cands, p.candidates[i])
			i++
			continue
		case i >= len(p.candidates) || ck > affKeys[j]:
			tp = affected[affKeys[j]]
			isAffected[affKeys[j]] = true
			j++
		default: // ck == affKeys[j]
			tp = p.candidates[i].tuple
			isAffected[ck] = true
			i++
			j++
		}
		lineage := newAnswer.Lineage(tp)
		if _, isFalse := lineage.(condition.FalseCond); !isFalse {
			cands = append(cands, candidate{tuple: tp, lineage: lineage})
		}
	}

	sel := selectEngine(cands)
	if p.kind == KindAuto && sel.Chosen != p.sel.Chosen {
		// The selector would pick a different engine for the maintained
		// lineage set; memoized marginals computed under the old choice
		// cannot be extended. Fall back to a recompile.
		return nil, reasonSelectionChanged
	}

	vers := make(map[string]uint64, len(p.tableVers))
	for t, v := range p.tableVers {
		vers[t] = v
	}
	vers[name] = version
	lines, refs := spliceRenderState(p, newAnswer, diff)
	newp := &plan{
		key:        planKey(p.queryText, p.kind, p.tables, vers),
		queryText:  p.queryText,
		kind:       p.kind,
		tables:     p.tables,
		query:      p.query,
		tableVers:  vers,
		answer:     newAnswer,
		rendered:   renderAnswer(newAnswer, lines, refs),
		physical:   p.physical, // shape- and arity-dependent only
		ops:        p.ops,
		candidates: cands,
		sel:        sel,
		rowLines:   lines,
		varRefs:    refs,
		groupIndex: diff.groupIndex,
	}
	m := &maintained{plan: newp}

	// Carry memoized marginals: tuples whose lineage did not change keep
	// their computed values (marginals are pure functions of lineage and
	// distributions, both unchanged); affected tuples are re-evaluated with
	// the plan's chosen engine. Plans without computed marginals (never
	// executed, or Monte-Carlo) stay lazy.
	chosen := p.kind
	if chosen == KindAuto {
		chosen = p.sel.Chosen
	}
	if p.margDone.Load() && (chosen == KindDTree || chosen == KindEnum || chosen == KindCircuit) {
		marg, reused, fresh, err := e.refreshMarginals(p, newp, isAffected, chosen)
		if err == nil {
			newp.marginals = marg
			newp.probStats = p.probStats
			newp.once.Do(func() {}) // marginals are final; burn the once
			newp.margDone.Store(true)
			m.reused, m.refreshed = reused, fresh
		}
		// On error the maintained plan simply recomputes all marginals on
		// its next execution; the answer itself is already correct.
	}
	return m, ""
}

// refreshMarginals merges old memoized marginals with fresh values for the
// affected candidates, preserving candidate (tuple-key) order. A candidate
// absent from the old marginals had probability zero — the fresh compile
// drops those too, so absence carries over. Returns the merged list plus
// reused/refreshed counts.
func (e *Engine) refreshMarginals(old, newp *plan, isAffected map[string]bool, kind Kind) ([]TupleAnswer, int, int, error) {
	oldByKey := make(map[string]TupleAnswer, len(old.marginals))
	for _, ta := range old.marginals {
		oldByKey[ta.Tuple.Key()] = ta
	}
	var affCands []candidate
	for _, c := range newp.candidates {
		if isAffected[c.tuple.Key()] {
			affCands = append(affCands, c)
		}
	}

	// Fresh values for the affected lineages with the plan's chosen engine.
	// Each engine computes a marginal as a pure function of (lineage,
	// distributions), so evaluating the affected subset alone yields the
	// same values a full recompute would.
	fresh := make(map[string]float64, len(affCands))
	switch kind {
	case KindDTree:
		ev := probcalc.New(newp.answer)
		for _, c := range affCands {
			pr, err := ev.Probability(c.lineage)
			if err != nil {
				return nil, 0, 0, err
			}
			fresh[c.tuple.Key()] = pr
		}
		st := ev.Stats()
		e.memoHits.Add(uint64(st.MemoHits))
		e.memoMisses.Add(uint64(st.MemoMisses))
	case KindEnum:
		for _, c := range affCands {
			pr, err := newp.answer.ConditionProbabilityEnum(c.lineage)
			if err != nil {
				return nil, 0, 0, err
			}
			fresh[c.tuple.Key()] = pr
		}
	case KindCircuit:
		if len(affCands) > 0 {
			conds := make([]condition.Condition, len(affCands))
			for i, c := range affCands {
				conds[i] = c.lineage
			}
			circ, err := probcalc.CompileAnswer(conds, newp.answer)
			if err != nil {
				return nil, 0, 0, err
			}
			st := circ.Stats()
			e.circuitCompiles.Add(1)
			e.circuitNodes.Add(uint64(st.Nodes))
			e.circuitShare.Add(uint64(st.SharedHits))
			probs, err := circ.EvalFloat(newp.answer)
			if err != nil {
				return nil, 0, 0, err
			}
			for i, c := range affCands {
				fresh[c.tuple.Key()] = probs[i]
			}
		}
	}

	out := make([]TupleAnswer, 0, len(newp.candidates))
	reused, refreshed := 0, 0
	for _, c := range newp.candidates {
		k := c.tuple.Key()
		if !isAffected[k] {
			if ta, ok := oldByKey[k]; ok {
				out = append(out, ta)
				reused++
			}
			continue
		}
		refreshed++
		pr := fresh[k]
		if pr == 0 {
			continue
		}
		out = append(out, TupleAnswer{Tuple: c.tuple, P: pr, Certain: pr >= 1-CertainEps})
	}
	return out, reused, refreshed, nil
}

// spliceRenderState derives the maintained plan's cached render state from
// its predecessor's: the rendered row lines (aligned with the new answer's
// rows) and the per-variable row refcounts. Rows outside the diff carry
// their lines and refcounts over; only changed and added rows are
// re-rendered. A predecessor without cached state (fresh compile) pays one
// O(answer) build here, amortized across every later patch. The
// predecessor's slice and map are never mutated.
func spliceRenderState(p *plan, newAnswer *pctable.PCTable, diff *maintDiff) ([]string, map[condition.Variable]int) {
	oldRows := p.answer.Table().Rows()
	oldLines := p.rowLines
	if oldLines == nil {
		oldLines = make([]string, len(oldRows))
		for i, r := range oldRows {
			oldLines[i] = rowLine(r)
		}
	}
	refs := make(map[condition.Variable]int, len(p.varRefs)+4)
	if p.varRefs != nil {
		for x, n := range p.varRefs {
			refs[x] = n
		}
	} else {
		for _, r := range oldRows {
			addRowVars(refs, r, 1)
		}
	}

	newRows := newAnswer.Table().Rows()
	lines := make([]string, len(newRows))
	switch diff.mode {
	case "append":
		copy(lines, oldLines)
		for g := range diff.changed {
			if g >= diff.oldLen {
				continue // new tail group, rendered below
			}
			addRowVars(refs, oldRows[g], -1)
			lines[g] = rowLine(newRows[g])
			addRowVars(refs, newRows[g], 1)
		}
		for i := diff.oldLen; i < len(newRows); i++ {
			lines[i] = rowLine(newRows[i])
			addRowVars(refs, newRows[i], 1)
		}
	default: // reeval
		pre, suf := diff.pre, diff.suf
		copy(lines[:pre], oldLines[:pre])
		copy(lines[len(lines)-suf:], oldLines[len(oldLines)-suf:])
		for i := pre; i < len(oldRows)-suf; i++ {
			addRowVars(refs, oldRows[i], -1)
		}
		for i := pre; i < len(newRows)-suf; i++ {
			lines[i] = rowLine(newRows[i])
			addRowVars(refs, newRows[i], 1)
		}
	}
	return lines, refs
}

// rowLine renders one answer row exactly as CTable.String does.
func rowLine(r exec.Row) string { return "  " + r.String() + "\n" }

// addRowVars adjusts the per-variable row refcounts for one row: each
// distinct variable of the row (term positions and condition alike) counts
// once, mirroring the per-row set semantics of CTable.Vars.
func addRowVars(refs map[condition.Variable]int, r exec.Row, delta int) {
	var buf [8]condition.Variable
	seen := buf[:0]
	add := func(x condition.Variable) {
		for _, y := range seen {
			if y == x {
				return
			}
		}
		seen = append(seen, x)
		refs[x] += delta
	}
	for _, t := range r.Terms {
		if t.IsVar {
			add(t.Var)
		}
	}
	for _, x := range condition.Vars(r.Cond) {
		add(x)
	}
}

// renderAnswer assembles the rendered answer from the cached row lines and
// variable refcounts, byte-identical to newAnswer.String(): the c-table
// header and rows, the domain section (gated, like CTable.String, on any
// declared domain), and the distribution lines — both sections over the
// table's occurring variables in sorted order, read from the refcounts
// instead of an O(answer) Vars scan.
func renderAnswer(t *pctable.PCTable, rowLines []string, refs map[condition.Variable]int) string {
	vars := make([]condition.Variable, 0, len(refs))
	for x, n := range refs {
		if n > 0 {
			vars = append(vars, x)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

	var b strings.Builder
	size := 32
	for _, l := range rowLines {
		size += len(l)
	}
	b.Grow(size + 48*len(vars))
	fmt.Fprintf(&b, "c-table(arity=%d)\n", t.Arity())
	for _, l := range rowLines {
		b.WriteString(l)
	}
	tab := t.Table()
	if tab.HasDomains() {
		for _, x := range vars {
			if d := tab.DomainOf(x); d != nil {
				fmt.Fprintf(&b, "  dom(%s) = %s\n", x, d)
			}
		}
	}
	for _, x := range vars {
		if d := t.Dist(x); d != nil {
			fmt.Fprintf(&b, "  %s ~ %s\n", x, d)
		}
	}
	return b.String()
}
