package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uncertaindb/pkg/uncertain"
)

// The /v1 surface serves the same handlers as the legacy routes, without
// deprecation headers; the legacy routes carry Deprecation and a successor
// Link.
func TestV1RoutesAndDeprecationHeaders(t *testing.T) {
	srv, _ := newTestServer(t)

	status, body := doJSON(t, http.MethodPut, srv.URL+"/v1/tables/Takes", takesScript)
	if status != http.StatusOK {
		t.Fatalf("PUT /v1/tables/Takes: %d %s", status, body)
	}
	for _, path := range []string{"/v1/tables", "/v1/tables/Takes", "/v1/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if d := resp.Header.Get("Deprecation"); d != "" {
			t.Errorf("GET %s: unexpected Deprecation header %q on the versioned surface", path, d)
		}
	}

	resp, err := http.Get(srv.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Errorf("legacy /tables: missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "</v1/tables>") || !strings.Contains(link, "successor-version") {
		t.Errorf("legacy /tables: Link = %q, want successor-version pointer to /v1/tables", link)
	}

	// Same answers on both surfaces.
	v1 := postPath(t, srv, "/v1/query", `{"query": "project[1](Takes)"}`)
	legacy := postPath(t, srv, "/query", `{"query": "project[1](Takes)"}`)
	a, _ := json.Marshal(v1.Tuples)
	b, _ := json.Marshal(legacy.Tuples)
	if string(a) != string(b) {
		t.Errorf("v1 and legacy answers differ: %s vs %s", a, b)
	}
}

func postPath(t *testing.T, srv *httptest.Server, path, reqBody string) queryResponse {
	t.Helper()
	status, body := doJSON(t, http.MethodPost, srv.URL+path, reqBody)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", path, status, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad query response %s: %v", body, err)
	}
	return qr
}

// batchItemWire mirrors batchItem for decoding: json cannot unmarshal into
// an embedded pointer to an unexported type, so tests embed the value.
type batchItemWire struct {
	Error string `json:"error"`
	queryResponse
}

type batchResponseWire struct {
	CatalogVersion uint64          `json:"catalogVersion"`
	Results        []batchItemWire `json:"results"`
}

// POST /v1/query/batch answers N queries against one catalog snapshot, with
// per-item errors.
func TestQueryBatchEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	putTakes(t, srv)

	reqBody := `{"queries": [
		{"query": "project[1](select[$2 = 'phys'](Takes))"},
		{"query": "select[("},
		{"query": "project[1](Nope)"},
		{"query": "project[1](select[$2 = 'phys'](Takes))"}
	]}`
	status, body := doJSON(t, http.MethodPost, srv.URL+"/v1/query/batch", reqBody)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/query/batch: %d %s", status, body)
	}
	var resp batchResponseWire
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad batch response %s: %v", body, err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Query == "" {
		t.Fatalf("item 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || resp.Results[2].Error == "" {
		t.Errorf("items 1 and 2 must carry per-item errors: %+v", resp.Results[1:3])
	}
	if resp.Results[3].Query == "" {
		t.Errorf("item 3: %+v", resp.Results[3])
	}
	if v0, v3 := resp.Results[0].CatalogVersion, resp.Results[3].CatalogVersion; v0 != v3 || resp.CatalogVersion != v0 {
		t.Errorf("batch catalog versions inconsistent: %d, %d, top-level %d", v0, v3, resp.CatalogVersion)
	}
	// A repeated batch runs off the plan cache; even an all-error batch
	// reports the snapshot's catalog version.
	status, body = doJSON(t, http.MethodPost, srv.URL+"/v1/query/batch",
		`{"queries": [{"query": "project[1](select[$2 = 'phys'](Takes))"}, {"query": "project[1](Nope)"}]}`)
	if status != http.StatusOK {
		t.Fatalf("second batch: %d %s", status, body)
	}
	var resp2 batchResponseWire
	if err := json.Unmarshal(body, &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Results[0].CacheHit {
		t.Errorf("second batch must hit the plan cache: %+v", resp2.Results[0])
	}
	if resp2.Results[1].Error == "" || resp2.CatalogVersion == 0 {
		t.Errorf("batch with failures: %+v (catalogVersion %d)", resp2.Results[1], resp2.CatalogVersion)
	}
	for _, ta := range resp.Results[0].Tuples {
		if ta.P <= 0 || ta.P > 1 {
			t.Errorf("marginal out of range: %+v", ta)
		}
	}

	// Malformed and oversized batches are rejected.
	if status, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/query/batch", `{"queries": []}`); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", status)
	}
	var big strings.Builder
	big.WriteString(`{"queries": [`)
	for i := 0; i < maxBatchQueries+1; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(`{"query": "project[1](Takes)"}`)
	}
	big.WriteString(`]}`)
	if status, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/query/batch", big.String()); status != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", status)
	}
}

// Batch answers must be identical to the same queries issued one at a time.
func TestBatchMatchesSingle(t *testing.T) {
	srv, _ := newTestServer(t)
	putTakes(t, srv)
	queries := []string{
		"project[1](Takes)",
		"project[2](Takes)",
		"project[1](select[$2 = 'phys'](Takes))",
	}
	var sb strings.Builder
	sb.WriteString(`{"queries": [`)
	for i, q := range queries {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"query": %q}`, q)
	}
	sb.WriteString(`]}`)
	status, body := doJSON(t, http.MethodPost, srv.URL+"/v1/query/batch", sb.String())
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, body)
	}
	var batch batchResponseWire
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single := postPath(t, srv, "/v1/query", fmt.Sprintf(`{"query": %q}`, q))
		item := batch.Results[i]
		if item.Error != "" {
			t.Fatalf("batch item %d errored: %s", i, item.Error)
		}
		if len(single.Tuples) != len(item.Tuples) {
			t.Fatalf("query %s: %d single vs %d batch answers", q, len(single.Tuples), len(item.Tuples))
		}
		for j := range single.Tuples {
			if fmt.Sprint(single.Tuples[j].Tuple) != fmt.Sprint(item.Tuples[j].Tuple) ||
				math.Abs(single.Tuples[j].P-item.Tuples[j].P) > 1e-12 {
				t.Errorf("query %s answer %d: single %+v vs batch %+v", q, j, single.Tuples[j], item.Tuples[j])
			}
		}
	}
}

// E13b: N queries per batch vs N single /v1/query round-trips. The batch
// amortizes HTTP framing, JSON decoding, snapshotting and per-request
// dispatch; EXPERIMENTS.md records the measured per-query latency gap.
func BenchmarkHTTPBatchVsSingle(b *testing.B) {
	db := uncertain.MustOpen(uncertain.Config{})
	if _, _, err := db.PutTableScript(takesScript); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(db))
	defer srv.Close()

	subjects := []string{"phys", "chem", "math"}
	const n = 24
	singles := make([]string, n)
	var batch strings.Builder
	batch.WriteString(`{"queries": [`)
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("project[1](select[$2 = '%s'](Takes))", subjects[i%len(subjects)])
		singles[i] = fmt.Sprintf(`{"query": %q}`, q)
		if i > 0 {
			batch.WriteString(",")
		}
		fmt.Fprintf(&batch, `{"query": %q}`, q)
	}
	batch.WriteString(`]}`)

	post := func(path, body string) error {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	// Warm the plan cache.
	if err := post("/v1/query/batch", batch.String()); err != nil {
		b.Fatal(err)
	}

	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range singles {
				if err := post("/v1/query", s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := post("/v1/query/batch", batch.String()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

const labsScript = `table Labs arity 2
row 'phys', 'L1'
row 'math', 'L2' | l = 1
dist l = {0:0.5, 1:0.5}
`

// /v1/query returns the cached physical plan, and /v1/stats exposes the
// aggregated per-operator counters (rows in/out, hash probes,
// residual-bucket hits, join strategy counts).
func TestV1PlanAndOperatorCounters(t *testing.T) {
	srv, _ := newTestServer(t)
	putTakes(t, srv)
	if status, body := doJSON(t, http.MethodPut, srv.URL+"/v1/tables/Labs", labsScript); status != http.StatusOK {
		t.Fatalf("PUT Labs: %d %s", status, body)
	}

	qr := postPath(t, srv, "/v1/query", `{"query": "project[1,4](Takes join[$2 = $3] Labs)"}`)
	if !strings.Contains(qr.Plan, "hash-join[$2=$1]") || !strings.Contains(qr.Plan, "scan(Takes)") {
		t.Errorf("query response plan missing hash join:\n%s", qr.Plan)
	}

	status, body := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d %s", status, body)
	}
	var stats struct {
		Engine struct {
			Ops struct {
				RowsIn          uint64 `json:"rowsIn"`
				RowsOut         uint64 `json:"rowsOut"`
				HashJoins       uint64 `json:"hashJoins"`
				NestedLoopJoins uint64 `json:"nestedLoopJoins"`
				HashProbes      uint64 `json:"hashProbes"`
				ResidualHits    uint64 `json:"residualHits"`
			} `json:"ops"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("bad stats %s: %v", body, err)
	}
	ops := stats.Engine.Ops
	if ops.HashJoins != 1 {
		t.Errorf("hashJoins = %d, want 1 (stats: %s)", ops.HashJoins, body)
	}
	// Theo's ground 'math' key probes the hash table; Alice's and Bob's
	// variable keys scan the two build rows each.
	if ops.HashProbes != 1 || ops.ResidualHits != 4 {
		t.Errorf("hashProbes = %d residualHits = %d, want 1 and 4", ops.HashProbes, ops.ResidualHits)
	}
	if ops.RowsIn == 0 || ops.RowsOut == 0 {
		t.Errorf("row counters empty: %s", body)
	}

	// A cache hit reuses the compiled plan and leaves the counters alone.
	qr2 := postPath(t, srv, "/v1/query", `{"query": "project[1,4](Takes join[$2 = $3] Labs)"}`)
	if !qr2.CacheHit || qr2.Plan != qr.Plan {
		t.Errorf("cache hit must reuse the physical plan (hit=%v)", qr2.CacheHit)
	}
	_, body2 := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "")
	var stats2 struct {
		Engine struct {
			Ops struct {
				HashJoins uint64 `json:"hashJoins"`
			} `json:"ops"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(body2, &stats2); err != nil {
		t.Fatal(err)
	}
	if stats2.Engine.Ops.HashJoins != 1 {
		t.Errorf("cache hit recompiled the plan: hashJoins = %d", stats2.Engine.Ops.HashJoins)
	}
}
