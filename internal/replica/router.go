package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uncertaindb/internal/obs"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Leader is the leader's base URL. Mutations and non-query traffic proxy
	// to it, and it is the fallthrough when no replica can serve a query.
	Leader string
	// Replicas are the replica base URLs queries fan out across.
	Replicas []string
	// HealthInterval is the replica health-check period. Zero selects 1s.
	HealthInterval time.Duration
	// FailAfter ejects a replica after this many consecutive request or
	// health-check failures (readmitted on the next healthy check). Zero
	// selects 1: one failed proxy attempt sidelines the replica until a
	// health check readmits it.
	FailAfter int
	// Client is the HTTP transport (nil for a default with a 30s timeout).
	Client *http.Client
	// Obs, when set, registers router metrics in its registry.
	Obs *obs.Observer
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 1
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// backend is one routed replica: its health state, advertised catalog
// version, and in-flight request count (the least-outstanding balancing
// signal).
type backend struct {
	url         string
	healthy     atomic.Bool
	version     atomic.Uint64 // last catalog version observed (health or response stamp)
	outstanding atomic.Int64
	fails       atomic.Int32

	requests *obs.Counter
}

// BackendStatus is the JSON shape of one backend in the router's status.
type BackendStatus struct {
	URL            string `json:"url"`
	Healthy        bool   `json:"healthy"`
	CatalogVersion uint64 `json:"catalogVersion"`
	Outstanding    int64  `json:"outstanding"`
}

// Router fans query traffic out across read replicas and proxies everything
// else to the leader. Responses are stamped with the serving backend and its
// catalog version; a client-supplied minimum catalog version is enforced by
// skipping stale replicas and, when necessary, falling through to the
// leader — a stale answer is never silently served.
type Router struct {
	opts     RouterOptions
	leader   *url.URL
	proxy    *httputil.ReverseProxy
	backends []*backend

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// Metrics (nil-safe without Obs).
	routeSeconds *obs.Histogram
	failovers    *obs.Counter
	staleSkips   *obs.Counter
	leaderFalls  *obs.Counter
}

// NewRouter builds a router over a leader and a static replica set.
func NewRouter(opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	if opts.Leader == "" {
		return nil, fmt.Errorf("replica: router needs a leader URL")
	}
	leaderURL, err := url.Parse(opts.Leader)
	if err != nil {
		return nil, fmt.Errorf("replica: bad leader URL %q: %w", opts.Leader, err)
	}
	r := &Router{
		opts:   opts,
		leader: leaderURL,
		proxy:  httputil.NewSingleHostReverseProxy(leaderURL),
		stop:   make(chan struct{}),
	}
	r.proxy.Transport = opts.Client.Transport
	for _, u := range opts.Replicas {
		u = strings.TrimRight(u, "/")
		if u == "" {
			continue
		}
		b := &backend{url: u}
		if ob := opts.Obs; ob != nil {
			b.requests = ob.Reg.Counter("uncertaindb_router_backend_requests_total",
				obs.Labels("backend", u), "Queries served by each backend.")
		}
		r.backends = append(r.backends, b)
	}
	if len(r.backends) == 0 {
		return nil, fmt.Errorf("replica: router needs at least one replica")
	}
	if ob := opts.Obs; ob != nil {
		r.routeSeconds = ob.Reg.Histogram("uncertaindb_router_route_duration_seconds", "",
			"End-to-end routed query duration (attempts included).", nil)
		r.failovers = ob.Reg.Counter("uncertaindb_router_failovers_total", "",
			"Query attempts retried on another backend after a failure.")
		r.staleSkips = ob.Reg.Counter("uncertaindb_router_stale_skips_total", "",
			"Backends skipped or responses discarded for missing min_catalog_version.")
		r.leaderFalls = ob.Reg.Counter("uncertaindb_router_leader_fallthroughs_total", "",
			"Queries served by the leader because no replica qualified.")
	}
	return r, nil
}

// Start launches the health-check loop; Close stops it.
func (r *Router) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.healthLoop()
	}()
}

// Close stops the health loop. Idempotent.
func (r *Router) Close() {
	r.once.Do(func() {
		close(r.stop)
		r.wg.Wait()
	})
}

// healthLoop probes every replica's /v1/stats on the configured interval:
// a success updates the advertised catalog version and readmits the
// backend, a failure counts toward ejection.
func (r *Router) healthLoop() {
	r.checkAll() // probe immediately so Start doesn't race the first query
	ticker := time.NewTicker(r.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.checkAll()
		}
	}
}

func (r *Router) checkAll() {
	var wg sync.WaitGroup
	for _, b := range r.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			r.check(b)
		}(b)
	}
	wg.Wait()
}

func (r *Router) check(b *backend) {
	resp, err := r.opts.Client.Get(b.url + "/v1/stats")
	if err != nil {
		r.fail(b)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		r.fail(b)
		return
	}
	var st struct {
		CatalogVersion uint64 `json:"catalogVersion"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		r.fail(b)
		return
	}
	b.observeVersion(st.CatalogVersion)
	b.fails.Store(0)
	b.healthy.Store(true)
}

// fail counts one failure against the backend, ejecting it at the
// threshold.
func (r *Router) fail(b *backend) {
	if int(b.fails.Add(1)) >= r.opts.FailAfter {
		b.healthy.Store(false)
	}
}

// observeVersion advances the backend's advertised catalog version
// monotonically (stamps can arrive out of order across goroutines).
func (b *backend) observeVersion(v uint64) {
	for {
		cur := b.version.Load()
		if v <= cur || b.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Backends returns the current status of every backend, replicas first in
// configuration order.
func (r *Router) Backends() []BackendStatus {
	out := make([]BackendStatus, 0, len(r.backends))
	for _, b := range r.backends {
		out = append(out, BackendStatus{
			URL:            b.url,
			Healthy:        b.healthy.Load(),
			CatalogVersion: b.version.Load(),
			Outstanding:    b.outstanding.Load(),
		})
	}
	return out
}

// Handler returns the router's HTTP surface: /v1/query and /v1/query/batch
// fan out across replicas; /v1/router reports backend status; /metrics
// serves the router's own registry (when observability is configured);
// everything else — mutations, table reads, the change feed — proxies to
// the leader.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", r.route)
	mux.HandleFunc("POST /v1/query/batch", r.route)
	mux.HandleFunc("POST /query", r.route) // deprecated alias, same fan-out
	mux.HandleFunc("GET /v1/router", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"leader":   r.opts.Leader,
			"backends": r.Backends(),
		})
	})
	if r.opts.Obs != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			r.opts.Obs.Reg.WritePrometheus(w)
		})
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		r.proxy.ServeHTTP(w, req)
	})
	return mux
}

// minVersionOf extracts the client's minimum catalog version: the
// X-Min-Catalog-Version header or the min_catalog_version query parameter
// (read-your-writes: clients pass the version a mutation acknowledged).
func minVersionOf(req *http.Request) (uint64, error) {
	s := req.Header.Get("X-Min-Catalog-Version")
	if qs := req.URL.Query().Get("min_catalog_version"); qs != "" {
		s = qs
	}
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// pick selects the healthy backend with an advertised version of at least
// minVer carrying the fewest outstanding requests. Backends tried this
// request are excluded. It reports (nil, true) when replicas exist but all
// qualified ones are stale — the caller should fall through to the leader
// rather than fail.
func (r *Router) pick(minVer uint64, tried map[*backend]bool) (b *backend, staleOnly bool) {
	var best *backend
	sawHealthy := false
	for _, cand := range r.backends {
		if tried[cand] || !cand.healthy.Load() {
			continue
		}
		sawHealthy = true
		if cand.version.Load() < minVer {
			r.staleSkips.Inc()
			continue
		}
		if best == nil || cand.outstanding.Load() < best.outstanding.Load() {
			best = cand
		}
	}
	return best, best == nil && sawHealthy
}

// routed is the outcome of one backend attempt.
type routed struct {
	status  int
	header  http.Header
	body    []byte
	version uint64 // catalogVersion stamp parsed from the body (0 when absent)
}

// route serves one query request: read the body once, then attempt backends
// in least-outstanding order, retrying on failure and on stale responses,
// with the leader as the final fallthrough. The response is stamped with
// X-Served-By and X-Catalog-Version.
func (r *Router) route(w http.ResponseWriter, req *http.Request) {
	t0 := time.Now()
	defer func() { r.routeSeconds.Observe(time.Since(t0)) }()
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 16<<20))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	minVer, err := minVersionOf(req)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf("bad min catalog version: %w", err))
		return
	}

	tried := make(map[*backend]bool, len(r.backends))
	attempts := 0
	// Bounded retries: each replica at most once, then the leader.
	for attempts <= len(r.backends) {
		b, _ := r.pick(minVer, tried)
		if b == nil {
			break
		}
		tried[b] = true
		attempts++
		b.outstanding.Add(1)
		res, err := r.attempt(b.url, req, body)
		b.outstanding.Add(-1)
		if err != nil {
			r.fail(b)
			r.failovers.Inc()
			continue
		}
		b.observeVersion(res.version)
		if res.version < minVer {
			// The replica advertised freshness it did not have (it may have
			// been reset by a resync). Never serve it silently; try a
			// fresher backend or the leader.
			r.staleSkips.Inc()
			continue
		}
		b.requests.Inc()
		writeRouted(w, res, b.url, attempts)
		return
	}

	// Leader fallthrough: the leader's catalog version is by definition the
	// newest, so min_catalog_version at most reflects a mutation the leader
	// acknowledged — it can always serve it.
	r.leaderFalls.Inc()
	res, err := r.attempt(strings.TrimRight(r.opts.Leader, "/"), req, body)
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, fmt.Errorf("no backend available: %w", err))
		return
	}
	attempts++
	if res.status == http.StatusOK && res.version < minVer {
		writeRouterError(w, http.StatusPreconditionFailed,
			fmt.Errorf("min_catalog_version %d is ahead of the leader (version %d)", minVer, res.version))
		return
	}
	writeRouted(w, res, "leader", attempts)
}

// attempt posts the query to one backend and parses the catalogVersion
// stamp out of the response body. Non-2xx statuses below 500 are valid
// outcomes (the query itself was bad); 5xx and transport errors are backend
// failures.
func (r *Router) attempt(base string, req *http.Request, body []byte) (*routed, error) {
	out, err := http.NewRequestWithContext(req.Context(), http.MethodPost, base+req.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	out.Header.Set("Content-Type", "application/json")
	resp, err := r.opts.Client.Do(out)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 500 {
		return nil, fmt.Errorf("%s: HTTP %d", base, resp.StatusCode)
	}
	res := &routed{status: resp.StatusCode, header: resp.Header, body: respBody}
	var stamp struct {
		CatalogVersion uint64 `json:"catalogVersion"`
	}
	if json.Unmarshal(respBody, &stamp) == nil {
		res.version = stamp.CatalogVersion
	}
	return res, nil
}

// writeRouted relays a backend response with the router's stamps.
func writeRouted(w http.ResponseWriter, res *routed, servedBy string, attempts int) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Served-By", servedBy)
	w.Header().Set("X-Catalog-Version", strconv.FormatUint(res.version, 10))
	w.Header().Set("X-Router-Attempts", strconv.Itoa(attempts))
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func writeRouterError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
}
