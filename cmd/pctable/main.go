// Command pctable answers queries over probabilistic c-tables: it prints
// the answer pc-table (closure, Theorem 9), the distribution over answer
// worlds, and exact or Monte-Carlo tuple probabilities.
//
// Usage:
//
//	pctable -table takes.tbl -query "project[1](select[$2 = 'phys'](Takes))" \
//	        [-engine dtree|enum|mc] [-samples 10000] [-workers 4]
//
// The exact engines differ in how tuple marginals are computed: dtree (the
// default) decomposes lineage conditions via internal/probcalc, enum
// enumerates every valuation of the lineage variables, and mc skips exact
// computation entirely in favour of Monte-Carlo estimation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/parser"
	"uncertaindb/internal/pctable"
	"uncertaindb/internal/value"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command: it parses flags from args and
// writes all output to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pctable", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	tablePath := fs.String("table", "", "path to the table description file (must contain dist directives)")
	queryText := fs.String("query", "", "relational algebra query (optional; defaults to the identity)")
	engine := fs.String("engine", "dtree", "marginal engine: dtree (decomposition), enum (brute force) or mc (Monte-Carlo only)")
	samples := fs.Int("samples", 0, "if positive, also estimate tuple probabilities by Monte-Carlo sampling (default 10000 with -engine=mc)")
	workers := fs.Int("workers", 1, "worker goroutines for the Monte-Carlo estimator")
	seed := fs.Int64("seed", 1, "random seed for the Monte-Carlo estimator")
	showDist := fs.Bool("dist", false, "print the full distribution over answer worlds")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		// The FlagSet's own output is discarded so the error reaches the
		// caller exactly once; point the user at the usage listing.
		return fmt.Errorf("%w (run with -h for usage)", err)
	}

	switch *engine {
	case "dtree", "enum", "mc":
	default:
		return fmt.Errorf("pctable: unknown -engine %q (want enum, dtree or mc)", *engine)
	}
	if *engine == "mc" && *samples <= 0 {
		*samples = 10000
	}
	if *tablePath == "" {
		return fmt.Errorf("pctable: -table is required")
	}
	f, err := os.Open(*tablePath)
	if err != nil {
		return err
	}
	defer f.Close()
	parsed, err := parser.ParseTable(f)
	if err != nil {
		return err
	}
	if !parsed.HasDistributions {
		return fmt.Errorf("pctable: the table has no dist directives; use cmd/ctable for purely incomplete tables")
	}
	tab := parsed.PCTable
	if err := tab.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(out, "Loaded probabilistic c-table %s:\n%s", parsed.Name, tab)

	answer := tab
	if *queryText != "" {
		q, err := parser.ParseQuery(*queryText)
		if err != nil {
			return err
		}
		answer, err = tab.EvalQuery(q)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nAnswer pc-table (conditions are lineage):\n%s", answer)
	}

	// Candidate tuples come from the answer table's rows over the variable
	// supports — never from possible-world enumeration, which is exponential
	// in the total variable count and would defeat the scalable engines.
	// Only -dist pays for the full world distribution. Each candidate's
	// lineage is computed once and shared by the enum and Monte-Carlo paths.
	type candidate struct {
		tuple   value.Tuple
		lineage condition.Condition
	}
	possible, err := answer.PossibleTuples()
	if err != nil {
		return err
	}
	candidates := make([]candidate, 0, len(possible))
	for _, tp := range possible {
		lineage := answer.Lineage(tp)
		if _, isFalse := lineage.(condition.FalseCond); !isFalse {
			candidates = append(candidates, candidate{tuple: tp, lineage: lineage})
		}
	}
	if *showDist {
		dist, err := answer.Mod()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nDistribution over answer worlds:\n%s", dist)
	}

	switch *engine {
	case "dtree":
		fmt.Fprintf(out, "\nAnswer-tuple marginal probabilities (exact, lineage-based, dtree engine):\n")
		probs, err := answer.TupleProbabilities()
		if err != nil {
			return err
		}
		for _, tp := range probs {
			fmt.Fprintf(out, "  P[%s] = %.6f\n", tp.Tuple, tp.P)
		}
	case "enum":
		fmt.Fprintf(out, "\nAnswer-tuple marginal probabilities (exact, lineage-based, enum engine):\n")
		for _, c := range candidates {
			p, err := answer.ConditionProbabilityEnum(c.lineage)
			if err != nil {
				return err
			}
			if p == 0 {
				// Row-pattern candidate with unsatisfiable lineage — not a
				// possible answer.
				continue
			}
			fmt.Fprintf(out, "  P[%s] = %.6f\n", c.tuple, p)
		}
	}

	if *samples > 0 {
		sampler, err := pctable.NewSampler(answer, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nMonte-Carlo estimates (n=%d, workers=%d):\n", *samples, *workers)
		for _, c := range candidates {
			est, se, err := sampler.EstimateConditionProbabilityParallel(c.lineage, *samples, *workers)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  P[%s] ≈ %.6f ± %.6f\n", c.tuple, est, se)
		}
	}
	return nil
}
