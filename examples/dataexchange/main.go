// Command dataexchange illustrates the incompleteness scenario that
// motivated the paper's authors (the Orchestra peer-to-peer data exchange
// system): update propagation introduces labelled nulls, which are exactly
// v-table variables. The example builds a v-table with correlated labelled
// nulls, runs queries through the c-table algebra, computes certain answers,
// and extracts why-provenance for a materialised view.
package main

import (
	"fmt"
	"log"

	"uncertaindb/internal/ctable"
	"uncertaindb/internal/incomplete"
	"uncertaindb/internal/lineage"
	"uncertaindb/internal/parser"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/relation"
	"uncertaindb/internal/value"
)

func main() {
	// A peer imports Assigned(person, project) tuples from two other peers.
	// Some project identifiers did not resolve during exchange and arrive as
	// labelled nulls (variables); the same null appearing twice is the same
	// unknown value — exactly a v-table.
	assigned := ctable.New(2)
	add := func(person interface{}, project interface{}) {
		assigned.AddRow(ctable.VarRow(person, project), nil)
	}
	add(value.Str("ana"), value.Str("orchestra"))
	add(value.Str("bea"), "p1") // unresolved project, labelled null p1
	add(value.Str("carl"), "p1")
	add(value.Str("dan"), "p2")
	// The exchange mapping tells us the unresolved projects are one of the
	// known project names.
	projects := value.NewDomain(value.Str("orchestra"), value.Str("sharq"), value.Str("trio"))
	assigned.SetDomain("p1", projects)
	assigned.SetDomain("p2", projects)

	fmt.Println("Imported v-table with labelled nulls:")
	fmt.Print(assigned)

	// Query: pairs of people assigned to the same project.
	q, err := parser.ParseQuery("project[1,3]( select[$2 = $4 && $1 != $3](Assigned x Assigned) )")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery: %s\n", q)

	answer, err := ctable.EvalQuery(q, assigned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAnswer c-table (note how conditions correlate the labelled nulls):")
	fmt.Print(answer.Simplify())

	// Certain answers: pairs that hold no matter how the nulls resolve.
	worlds, err := assigned.Mod()
	if err != nil {
		log.Fatal(err)
	}
	certain, err := incomplete.CertainAnswers(q, worlds)
	if err != nil {
		log.Fatal(err)
	}
	possible, err := incomplete.PossibleAnswers(q, worlds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCertain answers (true in all %d worlds): %s\n", worlds.Size(), certain)
	fmt.Printf("Possible answers: %s\n", possible)

	// Update propagation also needs provenance: for the materialised view
	// "people assigned to orchestra", record why each tuple is there, so
	// that deletions at the source can be propagated (Section 9's
	// lineage/why-provenance connection).
	resolved := relation.New(2)
	resolved.Add(value.NewTuple(value.Str("ana"), value.Str("orchestra")))
	resolved.Add(value.NewTuple(value.Str("bea"), value.Str("orchestra")))
	resolved.Add(value.NewTuple(value.Str("carl"), value.Str("sharq")))
	tracked := lineage.Track(resolved)
	view, err := parser.ParseQuery("project[1]( select[$2 = 'orchestra'](Assigned) )")
	if err != nil {
		log.Fatal(err)
	}
	prov, err := tracked.Lineage(view)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWhy-provenance of the materialised view π_person(σ_project='orchestra'):")
	for _, a := range prov {
		fmt.Printf("  %s  because of  %v   (lineage condition: %s)\n", a.Tuple, a.Witnesses, a.Condition)
	}

	// Finally: the same exchange, made probabilistic. The mapping confidence
	// says an unresolved project is orchestra with probability 0.6, sharq
	// 0.3, trio 0.1 — a pc-table (Definition 13).
	pc, err := parser.ParseTableString(`
table Assigned arity 2
row 'ana',  'orchestra'
row 'bea',  p1
row 'carl', p1
row 'dan',  p2
dist p1 = {'orchestra':0.6, 'sharq':0.3, 'trio':0.1}
dist p2 = {'orchestra':0.6, 'sharq':0.3, 'trio':0.1}
`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := pc.PCTable.TupleProbability(value.NewTuple(value.Str("bea"), value.Str("sharq")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith mapping confidences, P[bea works on sharq] = %.2f\n", p)
	together, err := pc.PCTable.EvalQuery(mustQuery("select[$1 = 'bea' && $3 = 'dan' && $2 = $4](Assigned x Assigned)"))
	if err != nil {
		log.Fatal(err)
	}
	pTogether := 0.0
	dist, err := together.Mod()
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range dist.Worlds() {
		if w.Instance.Size() > 0 {
			pTogether += w.P
		}
	}
	fmt.Printf("P[bea and dan end up on the same project] = %.2f\n", pTogether)
}

func mustQuery(s string) ra.Query {
	q, err := parser.ParseQuery(s)
	if err != nil {
		log.Fatal(err)
	}
	return q
}
