package ctable

import (
	"uncertaindb/internal/condition"
	"uncertaindb/internal/exec"
	"uncertaindb/internal/obs"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/value"
)

// This file adapts the c-table algebra ū of Theorem 4 (Imieliński & Lipski)
// onto the unified operator core in internal/exec: for every relational
// algebra operation u there is an operation ū on c-tables such that
// ν(q̄(T)) = q(ν(T)) for every valuation ν (Lemma 1), hence
// Mod(q̄(T)) = q(Mod(T)). The operator implementations themselves live in
// internal/exec — this package only binds c-tables as exec Models and wraps
// the produced rows back into a CTable. The pre-core eager evaluator is kept
// in eager.go as a frozen reference twin for equivalence tests and the E14
// benchmark.

// Options controls the behaviour of the c-table algebra.
type Options struct {
	// Simplify applies syntactic condition simplification after every
	// operation. It never changes Mod, only the size of conditions; the
	// ablation benchmark measures its effect.
	Simplify bool
	// Rewrite runs the logical-plan rewriter (predicate pushdown, projection
	// pruning) before execution. Rewrites never change Mod or tuple
	// marginals, only the syntactic shape of the answer table and the amount
	// of intermediate work. Ignored by the single-operator functions
	// (SelectC, ProjectC, ...), which apply exactly one operator.
	Rewrite bool
	// NoHash disables the physical hash operators (symbolic hash join,
	// hash-partitioned difference/intersection), restoring the nested-loop
	// path that reproduces the eager evaluator byte for byte. The hash path
	// preserves Mod and every tuple marginal but never emits rows whose
	// condition is the constant false.
	NoHash bool
	// NoBatch disables the vectorized batch engine, restoring the
	// tuple-at-a-time iterator operators. The batch path is byte-identical
	// to the iterator path; it only executes over interned term-ID columns,
	// morsel-parallel.
	NoBatch bool
	// Workers bounds the morsel-driven parallelism of the batch engine
	// (goroutines per evaluation). Zero or negative selects GOMAXPROCS; 1
	// forces sequential execution. The answer is byte-identical for every
	// worker count.
	Workers int
	// Pool, when non-nil, bounds the batch engine's extra goroutines across
	// every evaluation sharing it (exec.Options.Pool); the serving engine
	// passes one pool to all query executions.
	Pool *exec.WorkerPool
	// Stats, when non-nil, accumulates per-operator row/probe counters of
	// the physical plan (exec.OpStats). Use one OpStats per evaluation.
	Stats *exec.OpStats
	// Trace, when valid, receives one child span per executed batch
	// pipeline (exec.Options.Trace); the serving engine hangs these under
	// its compile span.
	Trace obs.SpanRef
}

// DefaultOptions simplifies conditions, rewrites plans and uses the
// physical hash operators.
var DefaultOptions = Options{Simplify: true, Rewrite: true}

// ExecOptions translates the algebra options for the shared operator core.
func (o Options) ExecOptions() exec.Options { return o.execOptions(true) }

func (o Options) execOptions(rewrite bool) exec.Options {
	return exec.Options{
		Simplify: o.Simplify,
		Rewrite:  rewrite && o.Rewrite,
		NoHash:   o.NoHash,
		NoBatch:  o.NoBatch,
		Workers:  o.Workers,
		Pool:     o.Pool,
		Stats:    o.Stats,
		Trace:    o.Trace,
	}
}

// Row returns the i-th row (ctable.Row is an alias of exec.Row); with
// Arity, NumRows and EachDomain it makes *CTable an exec.Model, so the
// shared operator core can scan c-tables directly.
func (t *CTable) Row(i int) exec.Row { return t.rows[i] }

// EachDomain visits the declared finite variable domains (exec.Model).
func (t *CTable) EachDomain(f func(condition.Variable, *value.Domain)) {
	for x, d := range t.domains {
		f(x, d)
	}
}

// FromExecResult wraps rows produced by the operator core into a CTable.
// Rows the run owns (the batch engine decodes into a private slab, with
// conditions already normalized) are adopted wholesale — ctable.Row aliases
// exec.Row, so this is free; iterator-path rows are cloned, since scans
// share term slices with the base models.
func FromExecResult(res *exec.Result) *CTable {
	out := New(res.Arity)
	for x, d := range res.Domains {
		out.domains[x] = d
	}
	if res.OwnedRows {
		out.rows = res.Rows
		return out
	}
	out.rows = make([]Row, 0, len(res.Rows))
	for _, r := range res.Rows {
		out.rows = append(out.rows, NewRow(r.Terms, r.Cond))
	}
	return out
}

// runOp evaluates a query through the operator core without plan rewriting —
// the single-operator entry points below apply exactly the operator they
// name.
func runOp(q ra.Query, env exec.Env, opts Options) (*CTable, error) {
	res, err := exec.Run(q, env, opts.execOptions(false))
	if err != nil {
		return nil, err
	}
	return FromExecResult(res), nil
}

// SelectC is σ̄_p(T): every row keeps its tuple and its condition is
// strengthened with the symbolic evaluation of p on the row's terms.
func SelectC(t *CTable, p ra.Predicate, opts Options) (*CTable, error) {
	return runOp(ra.Select(p, ra.Rel("T")), exec.Env{"T": t}, opts)
}

// ProjectC is π̄_cols(T): rows are projected onto cols and rows with
// syntactically identical projected tuples are merged by disjoining their
// conditions (the ∨ in the paper's definition of π̄).
func ProjectC(t *CTable, cols []int, opts Options) (*CTable, error) {
	return runOp(ra.Project(cols, ra.Rel("T")), exec.Env{"T": t}, opts)
}

// CrossC is T1 ×̄ T2: tuples are concatenated and conditions conjoined.
func CrossC(t1, t2 *CTable, opts Options) *CTable {
	out, err := runOp(ra.Cross(ra.Rel("T1"), ra.Rel("T2")), exec.Env{"T1": t1, "T2": t2}, opts)
	if err != nil {
		panic(err) // a cross product of well-formed tables cannot fail
	}
	return out
}

// UnionC is T1 ∪̄ T2: the union of the rows.
func UnionC(t1, t2 *CTable, opts Options) (*CTable, error) {
	return runOp(ra.Union(ra.Rel("T1"), ra.Rel("T2")), exec.Env{"T1": t1, "T2": t2}, opts)
}

// DiffC is T1 −̄ T2: a row (t1 : φ1) survives exactly when no row of T2 is
// simultaneously present and equal to it, so its condition becomes
// φ1 ∧ ⋀_{(t2:φ2) ∈ T2} ¬(φ2 ∧ t1=t2).
func DiffC(t1, t2 *CTable, opts Options) (*CTable, error) {
	return runOp(ra.Diff(ra.Rel("T1"), ra.Rel("T2")), exec.Env{"T1": t1, "T2": t2}, opts)
}

// IntersectC is T1 ∩̄ T2: a row (t1 : φ1) survives exactly when some row of
// T2 is present and equal to it.
func IntersectC(t1, t2 *CTable, opts Options) (*CTable, error) {
	return runOp(ra.Intersect(ra.Rel("T1"), ra.Rel("T2")), exec.Env{"T1": t1, "T2": t2}, opts)
}

// JoinC is the θ-join T1 ⋈̄_p T2 = σ̄_p(T1 ×̄ T2).
func JoinC(t1, t2 *CTable, p ra.Predicate, opts Options) (*CTable, error) {
	return runOp(ra.Join(ra.Rel("T1"), ra.Rel("T2"), p), exec.Env{"T1": t1, "T2": t2}, opts)
}

// Env maps input relation names to c-tables for multi-table evaluation.
type Env map[string]*CTable

// ExecEnv binds the environment's tables as models for the operator core.
func (env Env) ExecEnv() exec.Env {
	out := make(exec.Env, len(env))
	for name, t := range env {
		out[name] = t
	}
	return out
}

// EvalQuery translates a relational algebra query q into the c-table
// algebra q̄ and evaluates it on the input c-table (every input relation
// name is bound to the same table, matching the paper's single-relation
// schemas). Conditions are simplified along the way.
func EvalQuery(q ra.Query, input *CTable) (*CTable, error) {
	return EvalQueryWithOptions(q, input, DefaultOptions)
}

// MustEvalQuery is EvalQuery that panics on error.
func MustEvalQuery(q ra.Query, input *CTable) *CTable {
	out, err := EvalQuery(q, input)
	if err != nil {
		panic(err)
	}
	return out
}

// EvalQueryWithOptions is EvalQuery with explicit algebra options.
func EvalQueryWithOptions(q ra.Query, input *CTable, opts Options) (*CTable, error) {
	env := Env{}
	for name := range ra.InputNames(q) {
		env[name] = input
	}
	return EvalQueryEnvWithOptions(q, env, opts)
}

// EvalQueryEnv evaluates q over an environment of named c-tables: each
// BaseRel is bound to the table of that name. Variables shared between
// tables denote the same unknown (the usual c-table convention), so their
// conditions combine soundly under ×̄, ∪̄, −̄ and ∩̄. Referencing a name
// absent from env is an error.
func EvalQueryEnv(q ra.Query, env Env) (*CTable, error) {
	return EvalQueryEnvWithOptions(q, env, DefaultOptions)
}

// EvalQueryEnvWithOptions is EvalQueryEnv with explicit algebra options. The
// query is validated, optionally rewritten, and executed by the shared
// operator core in internal/exec.
func EvalQueryEnvWithOptions(q ra.Query, env Env, opts Options) (*CTable, error) {
	res, err := exec.Run(q, env.ExecEnv(), opts.execOptions(true))
	if err != nil {
		return nil, err
	}
	return FromExecResult(res), nil
}
