// Package httpapi is the HTTP surface of an uncertain database: the /v1
// JSON API cmd/uncertaind serves, factored out so in-process tests and the
// replication harness can mount the exact production handler over
// httptest servers. It is a thin translation layer over the pkg/uncertain
// facade — no query or catalog logic lives here.
//
// Beyond the query/catalog surface, the handler serves the replication
// protocol:
//
//	GET /v1/snapshot     the catalog's canonical wal.EncodeState bytes, with
//	                     X-Catalog-Version and a whole-payload CRC in
//	                     X-Snapshot-Crc32 — what a follower bootstraps from
//	GET /v1/changes      the change feed followers tail (410 Gone once the
//	                     requested versions are compacted away)
//	GET /v1/replication  the follower's replication status (404 on a leader)
//
// On a follower (a DB opened with Config.Follow), mutations are refused
// with 403 Forbidden and a Location header pointing at the same path on the
// leader — clients retry the write there.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uncertaindb/internal/value"
	"uncertaindb/pkg/uncertain"
)

// Options tunes the handler. The zero value is a sensible default.
type Options struct {
	// MaxSubscriptions bounds concurrently served /v1/subscribe streams;
	// excess subscribers get 503. Zero selects 64.
	MaxSubscriptions int
}

// New builds the HTTP API over the facade: the /v1 surface plus the
// deprecated unversioned aliases.
func New(db *uncertain.DB) http.Handler { return NewWithOptions(db, Options{}) }

// NewWithOptions is New with explicit tuning.
func NewWithOptions(db *uncertain.DB, opts Options) http.Handler {
	if opts.MaxSubscriptions <= 0 {
		opts.MaxSubscriptions = 64
	}
	subSem := make(chan struct{}, opts.MaxSubscriptions)
	mux := http.NewServeMux()
	register := func(prefix string, wrap func(http.HandlerFunc) http.HandlerFunc) {
		mux.HandleFunc("PUT "+prefix+"/tables/{name}", wrap(func(w http.ResponseWriter, r *http.Request) {
			handlePutTable(db, w, r)
		}))
		mux.HandleFunc("GET "+prefix+"/tables", wrap(func(w http.ResponseWriter, r *http.Request) {
			handleListTables(db, w)
		}))
		mux.HandleFunc("GET "+prefix+"/tables/{name}", wrap(func(w http.ResponseWriter, r *http.Request) {
			handleGetTable(db, w, r)
		}))
		mux.HandleFunc("DELETE "+prefix+"/tables/{name}", wrap(func(w http.ResponseWriter, r *http.Request) {
			handleDropTable(db, w, r)
		}))
		mux.HandleFunc("POST "+prefix+"/query", wrap(func(w http.ResponseWriter, r *http.Request) {
			handleQuery(db, w, r)
		}))
		mux.HandleFunc("GET "+prefix+"/stats", wrap(func(w http.ResponseWriter, r *http.Request) {
			version, infos := db.Tables()
			names := make([]string, 0, len(infos))
			for _, info := range infos {
				names = append(names, info.Name)
			}
			writeJSON(w, http.StatusOK, StatsResponse{
				Engine:         db.Stats(),
				CatalogVersion: version,
				Tables:         names,
			})
		}))
	}
	register("/v1", func(h http.HandlerFunc) http.HandlerFunc { return h })
	register("", deprecated)
	// The patch, subscribe, batch, change-feed and replication endpoints are
	// /v1-only: they postdate the unversioned surface.
	mux.HandleFunc("PATCH /v1/tables/{name}", func(w http.ResponseWriter, r *http.Request) {
		handlePatchTable(db, w, r)
	})
	mux.HandleFunc("POST /v1/subscribe", func(w http.ResponseWriter, r *http.Request) {
		handleSubscribe(db, w, r, subSem)
	})
	mux.HandleFunc("POST /v1/query/batch", func(w http.ResponseWriter, r *http.Request) {
		handleQueryBatch(db, w, r)
	})
	mux.HandleFunc("GET /v1/changes", func(w http.ResponseWriter, r *http.Request) {
		handleChanges(db, w, r)
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshot(db, w)
	})
	mux.HandleFunc("GET /v1/replication", func(w http.ResponseWriter, r *http.Request) {
		handleReplication(db, w)
	})
	// Observability surface: Prometheus metrics (conventionally unversioned)
	// and the slow-query ring buffer.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(db, w)
	})
	mux.HandleFunc("GET /v1/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		handleSlowQueries(db, w)
	})
	return mux
}

// redirectReadOnly refuses a mutation on a follower: 403 Forbidden with a
// Location header naming the same path on the leader. It reports whether it
// handled the request.
func redirectReadOnly(db *uncertain.DB, w http.ResponseWriter, r *http.Request) bool {
	if !db.ReadOnly() {
		return false
	}
	w.Header().Set("Location", strings.TrimRight(db.Leader(), "/")+r.URL.Path)
	writeError(w, http.StatusForbidden,
		fmt.Errorf("this node is a read-only follower; write to the leader at %s", db.Leader()))
	return true
}

// handleSnapshot serves GET /v1/snapshot: the catalog in its canonical
// snapshot encoding (wal.EncodeState), the exact bytes a follower bootstraps
// from. X-Catalog-Version carries the snapshot's version and
// X-Snapshot-Crc32 a CRC-32/IEEE over the whole payload (lower-case hex), so
// the receiver can verify integrity before decoding.
func handleSnapshot(db *uncertain.DB, w http.ResponseWriter) {
	data, version, crc := db.SnapshotBytes()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Catalog-Version", strconv.FormatUint(version, 10))
	w.Header().Set("X-Snapshot-Crc32", fmt.Sprintf("%08x", crc))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	if _, err := w.Write(data); err != nil {
		log.Printf("httpapi: writing snapshot: %v", err)
	}
}

// handleReplication serves GET /v1/replication: the follower's replication
// status. A leader (not following anyone) answers 404.
func handleReplication(db *uncertain.DB, w http.ResponseWriter) {
	st, ok := db.Replication()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("this node is not a follower"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition format.
func handleMetrics(db *uncertain.DB, w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ok, err := db.WriteMetrics(w)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("observability is disabled (-no-obs)"))
		return
	}
	if err != nil {
		log.Printf("httpapi: writing metrics: %v", err)
	}
}

// SlowResponse is the JSON shape of GET /v1/debug/slow.
type SlowResponse struct {
	// ThresholdMillis is the capture threshold; 0 means capture is disabled.
	ThresholdMillis int64 `json:"thresholdMillis"`
	// Total counts every capture since startup, including ones evicted from
	// the ring.
	Total uint64 `json:"total"`
	// Queries are the retained captures, most recent first, each with its
	// full span tree.
	Queries []uncertain.SlowQuery `json:"queries"`
}

// handleSlowQueries serves GET /v1/debug/slow: the retained slow-query
// captures with their span trees.
func handleSlowQueries(db *uncertain.DB, w http.ResponseWriter) {
	queries, total := db.SlowQueries()
	if queries == nil {
		queries = []uncertain.SlowQuery{}
	}
	writeJSON(w, http.StatusOK, SlowResponse{
		ThresholdMillis: db.SlowQueryThreshold().Milliseconds(),
		Total:           total,
		Queries:         queries,
	})
}

// ChangeJSON is the JSON shape of one change-feed record. Table is the
// base64 canonical encoding of the put table (wal.DecodeTable decodes it);
// Text is a human-readable rendering; CommittedUnixNano is the commit
// wall-clock time when this process still knows it (followers compute
// replication lag from it).
type ChangeJSON struct {
	Version           uint64 `json:"version"`
	Kind              string `json:"kind"`
	Name              string `json:"name"`
	Probabilistic     bool   `json:"probabilistic,omitempty"`
	Table             []byte `json:"table,omitempty"` // encoding/json renders []byte as base64
	Patch             []byte `json:"patch,omitempty"` // canonical patch encoding (kind "patch" only)
	Text              string `json:"text,omitempty"`
	CommittedUnixNano int64  `json:"committedUnixNano,omitempty"`
}

type ChangesResponse struct {
	From           uint64 `json:"from"`
	CatalogVersion uint64 `json:"catalogVersion"`
	// WaitMs is the effective long-poll wait applied to this request after
	// capping — clients asking for more learn the real bound instead of
	// silently getting less.
	WaitMs  int64        `json:"waitMs"`
	Changes []ChangeJSON `json:"changes"`
}

// Change-feed request bounds: one response page and the longest admissible
// long-poll. The wait cap must stay below the server's shutdown drain
// timeout (5s in cmd/uncertaind): a long-poll pinned at 30s used to hold its
// handler goroutine past the drain, so graceful shutdown timed out whenever
// an idle feed consumer was connected.
const (
	maxChangesLimit = 1024
	maxChangesWait  = 4 * time.Second
)

// handleChanges serves GET /v1/changes?from=V[&limit=N][&wait_ms=M]: the
// catalog mutations with version > V, oldest first. A from that has been
// compacted away is 410 Gone — the consumer re-syncs from /v1/snapshot (or
// by listing the tables) and resumes from the returned catalog version.
func handleChanges(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseUintParam(q.Get("from"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad \"from\": %w", err))
		return
	}
	limit, err := parseUintParam(q.Get("limit"), maxChangesLimit)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad \"limit\": %w", err))
		return
	}
	if limit == 0 || limit > maxChangesLimit {
		limit = maxChangesLimit
	}
	waitMS, err := parseUintParam(q.Get("wait_ms"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad \"wait_ms\": %w", err))
		return
	}
	wait := time.Duration(waitMS) * time.Millisecond
	if wait > maxChangesWait {
		wait = maxChangesWait
	}
	changes, version, err := db.Changes(r.Context(), from, int(limit), wait)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, uncertain.ErrCompacted):
			status = http.StatusGone
		case errors.Is(err, uncertain.ErrFutureVersion):
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	resp := ChangesResponse{From: from, CatalogVersion: version, WaitMs: wait.Milliseconds(), Changes: make([]ChangeJSON, 0, len(changes))}
	for _, ch := range changes {
		resp.Changes = append(resp.Changes, ChangeJSON{
			Version:           ch.Version,
			Kind:              ch.Kind,
			Name:              ch.Name,
			Probabilistic:     ch.Probabilistic,
			Table:             ch.Table,
			Patch:             ch.Patch,
			Text:              ch.Text,
			CommittedUnixNano: ch.CommittedUnixNano,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseUintParam parses an optional unsigned query parameter.
func parseUintParam(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// deprecated marks responses on the unversioned aliases: clients are pointed
// at the /v1 successor route.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

// errStatus maps typed facade errors onto HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, uncertain.ErrUnknownTable):
		return http.StatusNotFound
	case errors.Is(err, uncertain.ErrBadQuery):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// TableInfo is the JSON shape of one catalog table.
type TableInfo struct {
	Name          string `json:"name"`
	Arity         int    `json:"arity"`
	Rows          int    `json:"rows"`
	Variables     int    `json:"variables"`
	Probabilistic bool   `json:"probabilistic"`
	Version       uint64 `json:"version"`
}

type StatsResponse struct {
	Engine         uncertain.Stats `json:"engine"`
	CatalogVersion uint64          `json:"catalogVersion"`
	Tables         []string        `json:"tables"`
}

func tableInfoJSON(info uncertain.TableInfo) TableInfo {
	return TableInfo{
		Name:          info.Name,
		Arity:         info.Arity,
		Rows:          info.Rows,
		Variables:     info.Variables,
		Probabilistic: info.Probabilistic,
		Version:       info.Version,
	}
}

func handlePutTable(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	if redirectReadOnly(db, w, r) {
		return
	}
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tab, err := uncertain.ParseTable(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if tab.Name() != name {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("table script declares %q but the URL names %q", tab.Name(), name))
		return
	}
	version, err := db.PutTable(tab)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "catalogVersion": version})
}

// handlePatchTable serves PATCH /v1/tables/{name}: a patch script of
// delete/upsert/dist directives (see internal/parser) applied to the named
// table as one atomic row-level mutation. Cached plans reading the table are
// incrementally maintained rather than invalidated wherever the query shape
// allows. On a follower the request is refused with 403 and a Location
// header naming the leader — the router proxies PATCH there.
func handlePatchTable(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	if redirectReadOnly(db, w, r) {
		return
	}
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	version, err := db.PatchTableScript(name, string(body))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, uncertain.ErrUnknownTable) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "catalogVersion": version})
}

// subscribeRequest is the JSON body of POST /v1/subscribe: a query request
// plus the stream bound.
type subscribeRequest struct {
	queryRequest
	// MaxUpdates closes the stream after this many pushed results, the
	// initial one included. Zero selects 256.
	MaxUpdates int `json:"maxUpdates"`
}

// errSubscribeDone ends a subscription cleanly once MaxUpdates results have
// been pushed.
var errSubscribeDone = errors.New("httpapi: subscription update limit reached")

// handleSubscribe serves POST /v1/subscribe: a live query. The initial
// result is written immediately as one JSON line; each catalog mutation
// touching a table the query reads triggers a re-execution (incrementally
// maintained in the plan cache when the mutation was a patch) and another
// JSON line. The stream is newline-delimited JSON (application/x-ndjson),
// flushed per update, ending when the client disconnects or MaxUpdates is
// reached. Works on followers — their local feed fires as replicated
// mutations apply.
func handleSubscribe(db *uncertain.DB, w http.ResponseWriter, r *http.Request, sem chan struct{}) {
	select {
	case sem <- struct{}{}:
		defer func() { <-sem }()
	default:
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("subscription limit reached (%d concurrent streams)", cap(sem)))
		return
	}
	var req subscribeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing \"query\""))
		return
	}
	maxUpdates := req.MaxUpdates
	if maxUpdates <= 0 {
		maxUpdates = 256
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	pushed := 0
	err := db.Subscribe(r.Context(), req.request(), func(res *uncertain.Result) error {
		if pushed == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		if err := enc.Encode(resultJSON(res)); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		pushed++
		if pushed >= maxUpdates {
			return errSubscribeDone
		}
		return nil
	})
	if err != nil && !errors.Is(err, errSubscribeDone) && pushed == 0 {
		// Nothing streamed yet: a status line is still possible.
		writeError(w, errStatus(err), err)
	}
}

func handleDropTable(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	if redirectReadOnly(db, w, r) {
		return
	}
	name := r.PathValue("name")
	ok, err := db.DropTable(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name, "catalogVersion": db.CatalogVersion()})
}

func handleListTables(db *uncertain.DB, w http.ResponseWriter) {
	version, infos := db.Tables()
	out := make([]TableInfo, 0, len(infos))
	for _, info := range infos {
		out = append(out, tableInfoJSON(info))
	}
	writeJSON(w, http.StatusOK, map[string]any{"catalogVersion": version, "tables": out})
}

func handleGetTable(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, text, ok := db.Table(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		TableInfo
		Text string `json:"text"`
	}{tableInfoJSON(info), text})
}

// queryRequest is the JSON body of POST /query (and one element of a batch).
type queryRequest struct {
	Query   string `json:"query"`
	Engine  string `json:"engine"`
	Samples int    `json:"samples"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
	// Analyze attaches an EXPLAIN ANALYZE plan tree (per-operator wall time,
	// rows in/out, probe/residual counts) and the execution's span tree to
	// the response.
	Analyze bool `json:"analyze"`
	// Distributions overrides variable distributions for this query only
	// (what-if): variable name → {value literal → probability}. The
	// overrides must redistribute mass within each variable's declared
	// support; with the circuit engine the cached circuit is re-weighted
	// without re-decomposing.
	Distributions map[string]map[string]float64 `json:"distributions"`
}

func (q queryRequest) request() uncertain.Request {
	return uncertain.Request{Query: q.Query, Engine: q.Engine, Samples: q.Samples, Seed: q.Seed, Workers: q.Workers, Analyze: q.Analyze, Distributions: q.Distributions}
}

// QueryTuple is one answer tuple: the tuple as a JSON array of values plus
// its marginal probability.
type QueryTuple struct {
	Tuple   []any   `json:"tuple"`
	P       float64 `json:"p"`
	StdErr  float64 `json:"stderr,omitempty"`
	Certain bool    `json:"certain"`
}

type QueryResponse struct {
	Query  string `json:"query"`
	Engine string `json:"engine"`
	// Effective is the engine that computed the marginals — differs from
	// Engine only for engine=auto, where Selection explains the choice.
	Effective string `json:"effective"`
	// Selection is the auto-selector's lineage statistics and decision
	// (engine=auto only).
	Selection *uncertain.Selection `json:"selection,omitempty"`
	// WhatIf reports the marginals were computed under the request's
	// "distributions" overrides.
	WhatIf         bool         `json:"whatIf,omitempty"`
	CatalogVersion uint64       `json:"catalogVersion"`
	Tables         []string     `json:"tables"`
	CacheHit       bool         `json:"cacheHit"`
	Answer         string       `json:"answer"`
	Plan           string       `json:"plan"`
	Tuples         []QueryTuple `json:"tuples"`
	Certain        [][]any      `json:"certain"`
	Possible       [][]any      `json:"possible"`
	PrepareMicros  int64        `json:"prepareMicros"`
	ExecMicros     int64        `json:"execMicros"`
	// Analyzed is the EXPLAIN ANALYZE plan tree ("analyze": true only).
	Analyzed *uncertain.PlanNode `json:"analyzed,omitempty"`
	// Trace is the execution's span tree ("analyze": true with
	// observability enabled only).
	Trace *uncertain.Span `json:"trace,omitempty"`
}

func resultJSON(res *uncertain.Result) QueryResponse {
	resp := QueryResponse{
		Query:          res.Query,
		Engine:         string(res.Kind),
		Effective:      string(res.Effective),
		Selection:      res.Selection,
		WhatIf:         res.WhatIf,
		CatalogVersion: res.CatalogVersion,
		Tables:         res.Tables,
		CacheHit:       res.CacheHit,
		Answer:         res.Answer,
		Plan:           res.Plan,
		Tuples:         make([]QueryTuple, 0, len(res.Tuples)),
		Certain:        [][]any{},
		Possible:       [][]any{},
		PrepareMicros:  res.PrepareDuration.Microseconds(),
		ExecMicros:     res.ExecDuration.Microseconds(),
		Analyzed:       res.Analyzed,
		Trace:          res.Trace,
	}
	for _, ta := range res.Tuples {
		jt := tupleJSON(ta.Tuple)
		resp.Tuples = append(resp.Tuples, QueryTuple{Tuple: jt, P: ta.P, StdErr: ta.StdErr, Certain: ta.Certain})
		resp.Possible = append(resp.Possible, jt)
		if ta.Certain {
			resp.Certain = append(resp.Certain, jt)
		}
	}
	return resp
}

func handleQuery(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing \"query\""))
		return
	}
	res, err := db.Query(req.request())
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res))
}

// batchRequest is the JSON body of POST /v1/query/batch.
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

// BatchItem is one element of a batch response: either a query response or
// an error (never both).
type BatchItem struct {
	Error string `json:"error,omitempty"`
	*QueryResponse
}

type BatchResponse struct {
	CatalogVersion uint64      `json:"catalogVersion"`
	Results        []BatchItem `json:"results"`
}

// MaxBatchQueries bounds one batch request.
const MaxBatchQueries = 1024

func handleQueryBatch(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing \"queries\""))
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d queries exceeds the limit of %d", len(req.Queries), MaxBatchQueries))
		return
	}
	reqs := make([]uncertain.Request, len(req.Queries))
	for i, q := range req.Queries {
		reqs[i] = q.request()
	}
	items, version := db.QueryBatch(reqs)
	resp := BatchResponse{CatalogVersion: version, Results: make([]BatchItem, len(items))}
	for i, item := range items {
		if item.Err != nil {
			resp.Results[i] = BatchItem{Error: item.Err.Error()}
			continue
		}
		qr := resultJSON(item.Result)
		resp.Results[i] = BatchItem{QueryResponse: &qr}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tupleJSON renders a tuple as a JSON array of native values.
func tupleJSON(t uncertain.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Kind() {
		case value.KindInt:
			out[i] = v.AsInt()
		case value.KindString:
			out[i] = v.AsString()
		case value.KindBool:
			out[i] = v.AsBool()
		default:
			out[i] = nil
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		log.Printf("httpapi: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
