// Package uncertain is the public facade of the uncertain-database library:
// one importable surface over the representation systems of the paper
// (c-tables and probabilistic c-tables), the closed relational algebra
// (Theorems 4 and 9) executed on the shared operator core, and the serving
// engine with its catalog and compiled-plan cache.
//
// There are two levels:
//
//   - DB is the serving level: a catalog of named tables plus an engine
//     with a compiled-plan cache. Open it, register table scripts, and run
//     Query/QueryBatch — this is what cmd/uncertaind serves over HTTP.
//   - Table is the single-table level: parse one table description, run a
//     query through the closed algebra, and inspect the answer (possible
//     worlds, certain answers, exact or sampled tuple marginals) — this is
//     what cmd/ctable and cmd/pctable drive.
//
// The table and query syntax is documented in internal/parser; the returned
// result types are shared with internal/engine via type aliases, so the
// facade adds no translation layer on the hot path.
package uncertain

import (
	"context"
	"io"
	"net/http"
	"os"
	"time"

	"uncertaindb/internal/catalog"
	"uncertaindb/internal/engine"
	"uncertaindb/internal/exec"
	"uncertaindb/internal/obs"
	"uncertaindb/internal/parser"
	"uncertaindb/internal/replica"
	"uncertaindb/internal/value"
	"uncertaindb/internal/wal"
)

// Typed errors, re-exported for callers that classify failures.
var (
	// ErrUnknownTable reports a query referencing a table the catalog does
	// not contain (HTTP layers map it to 404).
	ErrUnknownTable = engine.ErrUnknownTable
	// ErrBadQuery reports a request that can never succeed: unparsable
	// query text, an ill-formed algebra expression, an unknown marginal
	// engine, or a table without the distributions marginals need (HTTP
	// layers map it to 400).
	ErrBadQuery = engine.ErrBadQuery
	// ErrCompacted reports a change-feed request for versions older than the
	// oldest retained record; the consumer must re-sync (list the tables)
	// and resume from the current catalog version (HTTP layers map it to
	// 410 Gone).
	ErrCompacted = catalog.ErrCompacted
	// ErrFutureVersion reports a change-feed request from a version the
	// catalog has not reached yet — a client bug, or a consumer that
	// outlived a catalog reset (HTTP layers map it to 400).
	ErrFutureVersion = catalog.ErrFutureVersion
)

// Result is a query outcome: the answer rendering, the possible answer
// tuples with marginal probabilities, cache and timing metadata.
type Result = engine.Result

// TupleAnswer is one answer tuple with its marginal probability.
type TupleAnswer = engine.TupleAnswer

// BatchItem is one outcome of QueryBatch: a result or a per-query error.
type BatchItem = engine.BatchItem

// Stats is a snapshot of the engine's cache and latency counters.
type Stats = engine.Stats

// Selection is the engine=auto selector's lineage statistics and decision
// for one plan (Result.Selection).
type Selection = engine.Selection

// PlanNode is one operator of an EXPLAIN ANALYZE plan tree: the operator
// label (matching the rendered Plan), rows in/out, probe/residual counts and
// wall time, with a deterministic JSON form (zero the timings for goldens).
type PlanNode = exec.PlanNode

// Span is the canonical exported form of one trace span (name, duration,
// attributes, children).
type Span = obs.SpanExport

// SlowQuery is one captured slow execution: query text, engine, cache
// outcome, duration and the full span tree.
type SlowQuery = obs.SlowQuery

// Tuple is a tuple of values; its String renders "(v1, ..., vn)".
type Tuple = value.Tuple

// Config tunes an opened DB. The zero value is a sensible default.
type Config struct {
	// CacheSize bounds the number of cached prepared plans (LRU eviction).
	// Zero or negative selects 128.
	CacheSize int
	// Workers bounds the number of concurrently executing queries and the
	// morsel-driven parallelism inside each plan compilation (the batch
	// engine splits base-table scans into morsels executed on a pool of
	// this size). Zero or negative selects GOMAXPROCS.
	Workers int
	// DisableRewrites turns off the logical-plan rewriter (predicate
	// pushdown, projection pruning). Rewrites never change answers, only
	// compilation cost, so they are on by default.
	DisableRewrites bool
	// DisableBatch turns off the vectorized batch engine, restoring the
	// tuple-at-a-time iterator operators (byte-identical answers, only
	// slower); a debugging aid.
	DisableBatch bool
	// DataDir, when non-empty, makes the catalog durable: every mutation is
	// appended to a write-ahead log in this directory before it is
	// acknowledged, compacted snapshots are written every SnapshotEvery
	// mutations, and Open recovers the catalog (latest valid snapshot plus
	// the valid log tail, torn final record discarded) with every table and
	// catalog version preserved byte-identically. Empty means in-memory
	// only: a restart loses the catalog.
	DataDir string
	// SnapshotEvery is the number of mutations between compacted snapshots
	// (DataDir only). Zero selects 64; negative disables compaction.
	SnapshotEvery int
	// Fsync forces an fsync of the log after every mutation (DataDir only).
	// Off, a machine crash (not just a process crash) can lose mutations
	// still in the OS page cache; Close always syncs.
	Fsync bool
	// DisableObservability turns off the observability core entirely: no
	// span recording, no metrics registry, no slow-query capture. On by
	// default because its hot-path cost is a few clock readings per query
	// (gated below 3% of the warm path by the E18 benchmark).
	DisableObservability bool
	// SlowQueryMillis is the slow-query capture threshold in milliseconds:
	// executions at or above it have their full span tree recorded in a ring
	// buffer (SlowQueries). Zero selects 100; negative disables capture.
	SlowQueryMillis int
	// SlowQueryCapacity bounds the slow-query ring buffer. Zero selects 128.
	SlowQueryCapacity int
	// Follow, when non-empty, opens the database as a read replica of the
	// leader uncertaind at this base URL: Open bootstraps the catalog from
	// the leader's snapshot and a background loop tails its change feed,
	// applying every mutation at the leader's exact versions. The database
	// is then read-only — mutations fail with ErrReadOnly — and mutually
	// exclusive with DataDir (the leader owns the durable history).
	Follow string
	// FollowClient is the HTTP client used for leader RPCs (Follow only).
	// Nil selects a default transport; tests inject fault-injecting
	// transports here.
	FollowClient *http.Client
	// ChangeWindow bounds the in-memory change-feed window: the recent
	// mutations Changes/Watch serve without WAL backfill. Zero selects 1024.
	// Consumers older than the window get ErrCompacted (durable catalogs
	// backfill from the WAL instead), so a small window forces lagging
	// followers through the snapshot-resync path — a memory-control and
	// fault-injection knob.
	ChangeWindow int
}

// Request is one query execution.
type Request struct {
	// Query is the relational algebra query text.
	Query string
	// Engine selects the marginal engine: "dtree" (default, per-tuple
	// decomposition), "circuit" (one shared circuit per answer), "enum"
	// (brute-force enumeration), "mc" (Monte-Carlo), or "auto" (pick
	// per answer from lineage statistics; see Selection on the Result).
	Engine string
	// Samples is the Monte-Carlo sample count (mc only; default 10000).
	Samples int
	// Seed is the Monte-Carlo random seed (mc only; default 1).
	Seed int64
	// Workers shards the Monte-Carlo draw (mc only; default 1).
	Workers int
	// Analyze attaches an EXPLAIN ANALYZE plan tree (per-operator wall
	// time, rows in/out, probe and residual counts) and the execution's span
	// tree to the Result. The instrumented run is separate from the cached
	// artifact and never perturbs the answer or the plan cache.
	Analyze bool
	// Distributions overrides variable distributions for this execution
	// only (what-if): variable name → {value literal → probability}. Each
	// override must form a probability distribution within the variable's
	// declared support. What-if marginals are computed fresh per request
	// and never cached; the circuit engine re-weights its cached circuit
	// without re-decomposing, so prepared what-ifs are nearly free.
	Distributions map[string]map[string]float64
}

func (r Request) internal() engine.Request {
	return engine.Request{Query: r.Query, Engine: r.Engine, Samples: r.Samples, Seed: r.Seed, Workers: r.Workers, Analyze: r.Analyze, Distributions: r.Distributions}
}

// TableInfo is the metadata of one catalog table.
type TableInfo struct {
	Name          string
	Arity         int
	Rows          int
	Variables     int
	Probabilistic bool
	Version       uint64
}

func entryInfo(e *catalog.Entry) TableInfo {
	return TableInfo{
		Name:          e.Name,
		Arity:         e.Table.Arity(),
		Rows:          e.Table.NumRows(),
		Variables:     len(e.Table.Vars()),
		Probabilistic: e.Probabilistic,
		Version:       e.Version,
	}
}

// DB is an open uncertain database: a versioned catalog of named c-/pc-
// tables and a query engine with a compiled-plan cache. Safe for concurrent
// use.
type DB struct {
	eng      *engine.Engine
	store    *wal.Store        // nil when in-memory
	obs      *obs.Observer     // nil when observability is disabled
	follower *replica.Follower // nil unless opened with Config.Follow
}

// Open creates a database with the given configuration. With an empty
// DataDir the database is in-memory and Open cannot fail; with a DataDir it
// recovers the durable catalog from disk (see Config.DataDir) and attaches
// the write-ahead log, so every later mutation is durable before it is
// acknowledged. Close a durable DB to flush and release the log.
func Open(cfg Config) (*DB, error) {
	var ob *obs.Observer
	if !cfg.DisableObservability {
		slowMs := cfg.SlowQueryMillis
		if slowMs == 0 {
			slowMs = 100
		}
		var threshold time.Duration
		if slowMs > 0 {
			threshold = time.Duration(slowMs) * time.Millisecond
		}
		slowCap := cfg.SlowQueryCapacity
		if slowCap <= 0 {
			slowCap = 128
		}
		ob = obs.NewObserver(threshold, slowCap)
	}
	engOpts := engine.Options{
		CacheSize:       cfg.CacheSize,
		Workers:         cfg.Workers,
		DisableRewrites: cfg.DisableRewrites,
		DisableBatch:    cfg.DisableBatch,
		Obs:             ob,
	}
	window := func(cat *catalog.Catalog) *catalog.Catalog {
		if cfg.ChangeWindow > 0 {
			cat.SetChangeWindow(cfg.ChangeWindow)
		}
		return cat
	}
	if cfg.Follow != "" {
		db := &DB{eng: engine.New(window(catalog.New()), engOpts), obs: ob}
		if err := db.openFollower(cfg); err != nil {
			return nil, err
		}
		return db, nil
	}
	if cfg.DataDir == "" {
		return &DB{eng: engine.New(window(catalog.New()), engOpts), obs: ob}, nil
	}
	store, state, tail, err := wal.Open(cfg.DataDir, wal.Options{SnapshotEvery: cfg.SnapshotEvery, Fsync: cfg.Fsync})
	if err != nil {
		return nil, err
	}
	if ob != nil {
		store.Instrument(ob.Reg)
	}
	cat := window(catalog.NewFromState(state, tail))
	cat.SetSink(store)
	return &DB{eng: engine.New(cat, engOpts), store: store, obs: ob}, nil
}

// MustOpen is Open for configurations that cannot fail (no DataDir); it
// panics on error.
func MustOpen(cfg Config) *DB {
	db, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// Close flushes the write-ahead log to stable storage and closes it; every
// mutation acknowledged before Close survives a restart. Closing an
// in-memory DB is a no-op. Queries remain servable after Close, but further
// mutations fail.
func (db *DB) Close() error {
	if db.follower != nil {
		db.follower.Close()
	}
	if db.store == nil {
		return nil
	}
	return db.store.Close()
}

// Change is one catalog mutation, as exposed by the change feed. For a put,
// Table carries the canonical encoding of the table (wal.DecodeTable
// decodes it; replicas apply it byte-faithfully) and Text a human-readable
// rendering. For a patch, Patch carries the canonical encoding of the
// row-level mutation (wal.DecodePatch) — replicas re-apply it against their
// own copy of the table and land on byte-identical rows.
type Change struct {
	Version       uint64
	Kind          string // "put", "delete", or "patch"
	Name          string
	Probabilistic bool
	Table         []byte
	Patch         []byte
	Text          string
	// CommittedUnixNano is the wall-clock commit time of the mutation, when
	// this process still knows it (0 for records replayed from the WAL after
	// a restart, or applied by replication). Replication lag metrics are
	// computed from it.
	CommittedUnixNano int64
}

func (db *DB) changeOf(rec *wal.Record) Change {
	ch := Change{Version: rec.Version, Kind: rec.Kind.String(), Name: rec.Name, Probabilistic: rec.Probabilistic}
	if rec.Table != nil {
		ch.Table = wal.EncodeTable(rec.Table)
		ch.Text = rec.Table.String()
	}
	if rec.Patch != nil {
		ch.Patch = wal.EncodePatch(rec.Patch)
	}
	if t, ok := db.eng.Catalog().CommitTime(rec.Version); ok {
		ch.CommittedUnixNano = t
	}
	return ch
}

// Changes returns the catalog mutations with version greater than from, in
// version order, up to limit (0 means no limit), together with the current
// catalog version. When no records are immediately available and wait is
// positive, it blocks up to wait (or ctx) for the next mutation. It returns
// ErrCompacted when records after from are no longer retained — re-sync by
// listing the tables and resume from the returned catalog version.
func (db *DB) Changes(ctx context.Context, from uint64, limit int, wait time.Duration) ([]Change, uint64, error) {
	w, err := db.eng.Catalog().Watch(from)
	if err != nil {
		return nil, db.eng.Catalog().Version(), err
	}
	defer w.Close()
	var out []Change
	full := func() bool { return limit > 0 && len(out) >= limit }
	drain := func() {
		for !full() {
			select {
			case rec, ok := <-w.C():
				if !ok {
					return
				}
				out = append(out, db.changeOf(rec))
			default:
				return
			}
		}
	}
	drain()
	if len(out) == 0 && wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case rec, ok := <-w.C():
			if ok {
				out = append(out, db.changeOf(rec))
				drain()
			}
		case <-timer.C:
		case <-ctx.Done():
		}
	}
	return out, db.eng.Catalog().Version(), nil
}

// LoadCatalog parses a catalog script (one or more table descriptions) and
// registers every table, returning the names in declaration order. Loading
// is all-or-nothing.
func (db *DB) LoadCatalog(r io.Reader) ([]string, error) {
	if err := db.readOnlyErr(); err != nil {
		return nil, err
	}
	return db.eng.LoadCatalogScript(r)
}

// LoadCatalogFile is LoadCatalog over a file path.
func (db *DB) LoadCatalogFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return db.LoadCatalog(f)
}

// PutTableScript parses a single table description and registers (or
// replaces) it under its declared name, returning the name and the new
// catalog version. Cached plans reading the table are invalidated.
func (db *DB) PutTableScript(script string) (name string, version uint64, err error) {
	if err := db.readOnlyErr(); err != nil {
		return "", 0, err
	}
	pt, err := parser.ParseTableString(script)
	if err != nil {
		return "", 0, err
	}
	version, err = db.eng.PutParsed(pt)
	if err != nil {
		return "", 0, err
	}
	return pt.Name, version, nil
}

// PutTable registers (or replaces) a parsed table under its declared name,
// returning the new catalog version. Cached plans reading it are
// invalidated.
func (db *DB) PutTable(t *Table) (uint64, error) {
	if err := db.readOnlyErr(); err != nil {
		return 0, err
	}
	return db.eng.PutTable(t.name, t.pc)
}

// PatchTableScript parses a patch script (delete/upsert/dist directives in
// the table-script row syntax; see internal/parser) and applies it to the
// named table as one atomic row-level mutation, returning the new catalog
// version. Unlike PutTable, cached plans reading the table are incrementally
// maintained — deltas propagated through their operator trees and only the
// affected tuple marginals re-evaluated — rather than invalidated, where the
// query shape allows it.
func (db *DB) PatchTableScript(name, script string) (uint64, error) {
	if err := db.readOnlyErr(); err != nil {
		return 0, err
	}
	p, err := parser.ParsePatchString(script)
	if err != nil {
		return 0, err
	}
	return db.eng.PatchTable(name, p)
}

// DropTable removes the named table, reporting whether it existed. The
// error is non-nil only when the write-ahead log refused the mutation (the
// drop did not happen).
func (db *DB) DropTable(name string) (bool, error) {
	if err := db.readOnlyErr(); err != nil {
		return false, err
	}
	return db.eng.DropTable(name)
}

// CatalogVersion returns the current catalog version.
func (db *DB) CatalogVersion() uint64 { return db.eng.Catalog().Version() }

// Tables returns a consistent snapshot of the catalog: its version and the
// metadata of every table, sorted by name.
func (db *DB) Tables() (version uint64, infos []TableInfo) {
	snap := db.eng.Catalog().Snapshot()
	infos = make([]TableInfo, 0, snap.Len())
	for _, name := range snap.Names() {
		infos = append(infos, entryInfo(snap.Get(name)))
	}
	return snap.Version(), infos
}

// Table returns one table's metadata and rendering, and whether it exists.
func (db *DB) Table(name string) (info TableInfo, text string, ok bool) {
	e := db.eng.Catalog().Snapshot().Get(name)
	if e == nil {
		return TableInfo{}, "", false
	}
	return entryInfo(e), e.Table.String(), true
}

// Query prepares (or fetches from the plan cache) and executes one query.
func (db *DB) Query(req Request) (*Result, error) {
	return db.eng.Execute(req.internal())
}

// QueryBatch executes every request against a single catalog snapshot —
// the whole batch sees one consistent version, returned alongside the items
// — with the items running concurrently under the engine's bounded worker
// pool. Results come back in request order; failures are reported per item.
func (db *DB) QueryBatch(reqs []Request) ([]BatchItem, uint64) {
	internal := make([]engine.Request, len(reqs))
	for i, r := range reqs {
		internal[i] = r.internal()
	}
	return db.eng.ExecuteBatch(internal)
}

// Stats returns a snapshot of the engine's counters.
func (db *DB) Stats() Stats { return db.eng.Stats() }

// WriteMetrics renders every registered metric in the Prometheus text
// exposition format — query latency histograms (cold/warm), plan-cache and
// physical-operator counters, probcalc memo effectiveness, catalog and WAL
// instrumentation. It reports whether observability is enabled; when
// disabled nothing is written.
func (db *DB) WriteMetrics(w io.Writer) (bool, error) {
	if db.obs == nil {
		return false, nil
	}
	_, err := db.obs.Reg.WritePrometheus(w)
	return true, err
}

// SlowQueries returns the captured slow executions, most recent first, and
// the total ever captured (including ones evicted from the ring).
func (db *DB) SlowQueries() ([]SlowQuery, uint64) {
	if db.obs == nil {
		return nil, 0
	}
	return db.obs.Slow.Snapshot(), db.obs.Slow.Total()
}

// SlowQueryThreshold returns the capture threshold (0 when observability or
// capture is disabled).
func (db *DB) SlowQueryThreshold() time.Duration {
	if db.obs == nil {
		return 0
	}
	return db.obs.SlowThreshold
}
