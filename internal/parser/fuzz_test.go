package parser

import "testing"

// FuzzParse exercises the condition parser with arbitrary input and checks
// the round-trip property: any condition that parses must re-parse from its
// String rendering, and the rendering must be a fixpoint. The query and
// table parsers are fed the same input purely to catch panics.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"x = 1",
		"x != 'a' && (y = true || !(z = 2))",
		"¬(x ≠ y) ∧ t = false",
		"true",
		"false || x = -3",
		"a = b && b = c && c = a",
		"x = 'it''s'",
		"project[1](select[$2 = 'phys'](Takes))",
		"table T arity 1\nrow x\ndist x = {1:0.5, 2:0.5}\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Panic detection only — errors are expected on arbitrary input.
		ParseQuery(s)
		ParseTableString(s)

		c, err := ParseCondition(s)
		if err != nil {
			return
		}
		rendered := c.String()
		c2, err := ParseCondition(rendered)
		if err != nil {
			t.Fatalf("round-trip parse failed for %q (rendered from %q): %v", rendered, s, err)
		}
		if again := c2.String(); again != rendered {
			t.Fatalf("rendering not a fixpoint: %q re-parses to %q (input %q)", rendered, again, s)
		}
	})
}
