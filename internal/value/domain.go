package value

import (
	"fmt"
	"sort"
)

// Domain is a finite subset of D, used as the active domain for valuation
// enumeration over tables with variables and as dom(x) for finite-domain
// tables and or-sets (Definition 6 of the paper).
//
// A Domain is an ordered set without duplicates; the order is the canonical
// Value.Compare order so that enumeration is deterministic.
type Domain struct {
	values []Value
	index  map[Value]int
}

// NewDomain builds a domain from the given values, discarding duplicates.
// Duplicates are removed by sorting and compacting equal neighbours, and the
// position index is built in a single pass over the final order — no
// intermediate placeholder entries ever exist.
func NewDomain(vs ...Value) *Domain {
	values := append(make([]Value, 0, len(vs)), vs...)
	sort.Slice(values, func(i, j int) bool { return values[i].Compare(values[j]) < 0 })
	d := &Domain{index: make(map[Value]int, len(values))}
	for _, v := range values {
		if n := len(d.values); n > 0 && d.values[n-1] == v {
			continue
		}
		d.index[v] = len(d.values)
		d.values = append(d.values, v)
	}
	return d
}

// IntRange returns the domain {lo, lo+1, ..., hi} of integers.
func IntRange(lo, hi int64) *Domain {
	if hi < lo {
		return NewDomain()
	}
	vs := make([]Value, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		vs = append(vs, Int(i))
	}
	return NewDomain(vs...)
}

// BoolDomain returns the two-element domain {false, true} used by boolean
// c-tables.
func BoolDomain() *Domain { return NewDomain(Bool(false), Bool(true)) }

// Size returns the number of elements of d.
func (d *Domain) Size() int { return len(d.values) }

// Values returns the elements of d in canonical order. The returned slice
// must not be modified.
func (d *Domain) Values() []Value { return d.values }

// Contains reports whether v is an element of d.
func (d *Domain) Contains(v Value) bool {
	_, ok := d.index[v]
	return ok
}

// At returns the i-th element in canonical order.
func (d *Domain) At(i int) Value { return d.values[i] }

// IndexOf returns the position of v in canonical order, or -1 if absent.
func (d *Domain) IndexOf(v Value) int {
	if i, ok := d.index[v]; ok {
		return i
	}
	return -1
}

// Union returns the domain containing the elements of d and e.
func (d *Domain) Union(e *Domain) *Domain {
	vs := make([]Value, 0, len(d.values)+len(e.values))
	vs = append(vs, d.values...)
	vs = append(vs, e.values...)
	return NewDomain(vs...)
}

// Equal reports whether d and e contain exactly the same elements.
func (d *Domain) Equal(e *Domain) bool {
	if d.Size() != e.Size() {
		return false
	}
	for i, v := range d.values {
		if e.values[i] != v {
			return false
		}
	}
	return true
}

// String renders the domain as "{v1, v2, ...}".
func (d *Domain) String() string {
	s := "{"
	for i, v := range d.values {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + "}"
}

// Copy returns an independent copy of d.
func (d *Domain) Copy() *Domain { return NewDomain(d.values...) }

// MustNonEmpty panics with a descriptive message if the domain is empty.
// Finite-domain tables require every variable domain to be non-empty;
// constructors call this to fail fast on ill-formed inputs.
func (d *Domain) MustNonEmpty(what string) {
	if d.Size() == 0 {
		panic(fmt.Sprintf("value: empty domain for %s", what))
	}
}
