// Package value defines the value domain D used by all table models in this
// library, together with tuples over D^n.
//
// The paper works over a single countably infinite domain D of constants.
// We model D as the disjoint union of 64-bit integers and strings (booleans
// are included for convenience of the probabilistic boolean models, and a
// distinguished Null is provided for interoperability with SQL-style data,
// although the paper itself has no NULL value: Codd tables model nulls with
// variables). Values are a small closed sum implemented as a tagged struct
// so that tuples are comparable, hashable and allocation-friendly.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the variants of a Value.
type Kind uint8

// The kinds of values in the domain D.
const (
	KindNull Kind = iota
	KindInt
	KindString
	KindBool
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single element of the domain D. The zero Value is Null.
//
// Value is a comparable type: it may be used directly as a map key and
// compared with ==. Two values are == exactly when they denote the same
// domain element.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Null is the distinguished null value (the zero Value).
var Null = Value{}

// Int returns the domain element for the integer i.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// String_ returns the domain element for the string s.
//
// The trailing underscore avoids a collision with the fmt.Stringer method.
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Str is a shorthand alias for String_.
func Str(s string) Value { return String_(s) }

// Bool returns the domain element for the boolean b.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool, i: 0}
}

// Kind reports which variant v holds.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer held by v. It panics if v is not an int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsString returns the string held by v. It panics if v is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s value", v.kind))
	}
	return v.s
}

// AsBool returns the boolean held by v. It panics if v is not a bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s value", v.kind))
	}
	return v.i != 0
}

// Equal reports whether v and w denote the same domain element.
// It is identical to v == w and provided for readability.
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders values: Null < ints (by value) < strings (lexicographically)
// < Bool(false) < Bool(true). It returns -1, 0 or +1. The order is total
// and is used only for canonicalisation (sorting tuples, deterministic
// output); it carries no semantic weight in the paper.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindBool:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.s, w.s)
	}
	return 0
}

// String renders v in the textual syntax used throughout the library:
// integers as decimal literals, strings single-quoted, booleans as
// true/false and null as "⊥".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "⊥"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return "'" + v.s + "'"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Key returns a compact string key that uniquely identifies v. Unlike
// String it is injective across kinds (e.g. Int(1) and Str("1") differ).
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindString:
		return "s" + v.s
	case KindBool:
		if v.i != 0 {
			return "b1"
		}
		return "b0"
	default:
		return "?"
	}
}
