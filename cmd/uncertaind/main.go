// Command uncertaind is a resident query service over probabilistic
// c-tables: a catalog of named tables, an engine with a compiled-plan cache,
// and an HTTP JSON API.
//
// Usage:
//
//	uncertaind -addr 127.0.0.1:8080 -load catalog.tbl [-cache 128] [-workers 4]
//
// Endpoints:
//
//	PUT    /tables/{name}   register or replace a table (body: table script)
//	GET    /tables          list catalog tables
//	GET    /tables/{name}   one table's metadata and rendering
//	DELETE /tables/{name}   drop a table
//	POST   /query           {"query": "...", "engine": "dtree|enum|mc", ...}
//	GET    /stats           engine cache and latency counters
//
// The daemon amortizes parsing, the closed algebra (Theorems 4 and 9) and
// lineage decomposition across requests: repeated queries hit the prepared
// plan cache, which is invalidated per table on replacement. It shuts down
// gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"uncertaindb/internal/catalog"
	"uncertaindb/internal/engine"
	"uncertaindb/internal/parser"
	"uncertaindb/internal/value"
)

func main() {
	log.SetFlags(0)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// multiFlag collects repeated -load flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// run is the testable body of the daemon: it parses flags from args, serves
// until ctx is cancelled, then shuts down gracefully. The actual listen
// address is printed to out, so -addr :0 is usable in tests.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("uncertaind", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	cacheSize := fs.Int("cache", 128, "maximum number of cached prepared plans")
	workers := fs.Int("workers", 0, "maximum concurrently executing queries (0 = GOMAXPROCS)")
	var loads multiFlag
	fs.Var(&loads, "load", "catalog script to load at startup (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return fmt.Errorf("%w (run with -h for usage)", err)
	}

	eng := engine.New(catalog.New(), engine.Options{CacheSize: *cacheSize, Workers: *workers})
	for _, path := range loads {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		names, err := eng.LoadCatalogScript(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("uncertaind: loading %s: %w", path, err)
		}
		fmt.Fprintf(out, "loaded %s: tables %s\n", path, strings.Join(names, ", "))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newHandler(eng)}
	fmt.Fprintf(out, "uncertaind listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintln(out, "uncertaind: shut down")
	return nil
}

// newHandler builds the HTTP API over the engine.
func newHandler(eng *engine.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /tables/{name}", func(w http.ResponseWriter, r *http.Request) {
		handlePutTable(eng, w, r)
	})
	mux.HandleFunc("GET /tables", func(w http.ResponseWriter, r *http.Request) {
		handleListTables(eng, w)
	})
	mux.HandleFunc("GET /tables/{name}", func(w http.ResponseWriter, r *http.Request) {
		handleGetTable(eng, w, r)
	})
	mux.HandleFunc("DELETE /tables/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !eng.DropTable(name) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"dropped": name, "catalogVersion": eng.Catalog().Version()})
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(eng, w, r)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsResponse{
			Engine:         eng.Stats(),
			CatalogVersion: eng.Catalog().Version(),
			Tables:         eng.Catalog().Snapshot().Names(),
		})
	})
	return mux
}

// tableInfo is the JSON shape of one catalog table.
type tableInfo struct {
	Name          string `json:"name"`
	Arity         int    `json:"arity"`
	Rows          int    `json:"rows"`
	Variables     int    `json:"variables"`
	Probabilistic bool   `json:"probabilistic"`
	Version       uint64 `json:"version"`
}

type statsResponse struct {
	Engine         engine.Stats `json:"engine"`
	CatalogVersion uint64       `json:"catalogVersion"`
	Tables         []string     `json:"tables"`
}

func entryInfo(e *catalog.Entry) tableInfo {
	return tableInfo{
		Name:          e.Name,
		Arity:         e.Table.Arity(),
		Rows:          e.Table.Table().NumRows(),
		Variables:     len(e.Table.Vars()),
		Probabilistic: e.Probabilistic,
		Version:       e.Version,
	}
}

func handlePutTable(eng *engine.Engine, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pt, err := parser.ParseTableString(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if pt.Name != name {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("table script declares %q but the URL names %q", pt.Name, name))
		return
	}
	version, err := eng.PutParsed(pt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "catalogVersion": version})
}

func handleListTables(eng *engine.Engine, w http.ResponseWriter) {
	snap := eng.Catalog().Snapshot()
	infos := make([]tableInfo, 0, snap.Len())
	for _, name := range snap.Names() {
		infos = append(infos, entryInfo(snap.Get(name)))
	}
	writeJSON(w, http.StatusOK, map[string]any{"catalogVersion": snap.Version(), "tables": infos})
}

func handleGetTable(eng *engine.Engine, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e := eng.Catalog().Snapshot().Get(name)
	if e == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		tableInfo
		Text string `json:"text"`
	}{entryInfo(e), e.Table.String()})
}

// queryRequest is the JSON body of POST /query.
type queryRequest struct {
	Query   string `json:"query"`
	Engine  string `json:"engine"`
	Samples int    `json:"samples"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
}

// tupleAnswer is one answer tuple: the tuple as a JSON array of values plus
// its marginal probability.
type tupleAnswer struct {
	Tuple   []any   `json:"tuple"`
	P       float64 `json:"p"`
	StdErr  float64 `json:"stderr,omitempty"`
	Certain bool    `json:"certain"`
}

type queryResponse struct {
	Query          string        `json:"query"`
	Engine         string        `json:"engine"`
	CatalogVersion uint64        `json:"catalogVersion"`
	Tables         []string      `json:"tables"`
	CacheHit       bool          `json:"cacheHit"`
	Answer         string        `json:"answer"`
	Tuples         []tupleAnswer `json:"tuples"`
	Certain        [][]any       `json:"certain"`
	Possible       [][]any       `json:"possible"`
	PrepareMicros  int64         `json:"prepareMicros"`
	ExecMicros     int64         `json:"execMicros"`
}

func handleQuery(eng *engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing \"query\""))
		return
	}
	res, err := eng.Execute(engine.Request{
		Query:   req.Query,
		Engine:  req.Engine,
		Samples: req.Samples,
		Seed:    req.Seed,
		Workers: req.Workers,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := queryResponse{
		Query:          res.Query,
		Engine:         string(res.Kind),
		CatalogVersion: res.CatalogVersion,
		Tables:         res.Tables,
		CacheHit:       res.CacheHit,
		Answer:         res.Answer,
		Tuples:         make([]tupleAnswer, 0, len(res.Tuples)),
		Certain:        [][]any{},
		Possible:       [][]any{},
		PrepareMicros:  res.PrepareDuration.Microseconds(),
		ExecMicros:     res.ExecDuration.Microseconds(),
	}
	for _, ta := range res.Tuples {
		jt := tupleJSON(ta.Tuple)
		resp.Tuples = append(resp.Tuples, tupleAnswer{Tuple: jt, P: ta.P, StdErr: ta.StdErr, Certain: ta.Certain})
		resp.Possible = append(resp.Possible, jt)
		if ta.Certain {
			resp.Certain = append(resp.Certain, jt)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tupleJSON renders a tuple as a JSON array of native values.
func tupleJSON(t value.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Kind() {
		case value.KindInt:
			out[i] = v.AsInt()
		case value.KindString:
			out[i] = v.AsString()
		case value.KindBool:
			out[i] = v.AsBool()
		default:
			out[i] = nil
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		log.Printf("uncertaind: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
