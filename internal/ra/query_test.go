package ra

import (
	"testing"
	"testing/quick"

	"uncertaindb/internal/relation"
	"uncertaindb/internal/value"
)

func ints(rows ...[]int64) *relation.Relation { return relation.FromInts(rows...) }

func TestEvalBaseAndConst(t *testing.T) {
	r := ints([]int64{1, 2}, []int64{3, 4})
	got, err := Eval(Rel("R"), Env{"R": r})
	if err != nil || !got.Equal(r) {
		t.Fatalf("base eval: %v %v", got, err)
	}
	got, err = Eval(Constant(r), Env{})
	if err != nil || !got.Equal(r) {
		t.Fatalf("const eval: %v %v", got, err)
	}
	if _, err := Eval(Rel("missing"), Env{}); err == nil {
		t.Fatal("expected error for unknown relation")
	}
}

func TestEvalSelect(t *testing.T) {
	r := ints([]int64{1, 1}, []int64{1, 2}, []int64{2, 2})
	q := Select(Eq(Col(0), Col(1)), Rel("R"))
	got := MustEval(q, Env{"R": r})
	if !got.Equal(ints([]int64{1, 1}, []int64{2, 2})) {
		t.Fatalf("select = %v", got)
	}
	q = Select(Ne(Col(0), ConstInt(1)), Rel("R"))
	got = MustEval(q, Env{"R": r})
	if !got.Equal(ints([]int64{2, 2})) {
		t.Fatalf("select ≠ = %v", got)
	}
}

func TestEvalProjectCrossJoin(t *testing.T) {
	r := ints([]int64{1, 10}, []int64{2, 20})
	s := ints([]int64{1, 100}, []int64{3, 300})
	p := MustEval(Project([]int{1}, Rel("R")), Env{"R": r})
	if !p.Equal(ints([]int64{10}, []int64{20})) {
		t.Fatalf("project = %v", p)
	}
	x := MustEval(Cross(Rel("R"), Rel("S")), Env{"R": r, "S": s})
	if x.Size() != 4 || x.Arity() != 4 {
		t.Fatalf("cross = %v", x)
	}
	j := MustEval(Join(Rel("R"), Rel("S"), Eq(Col(0), Col(2))), Env{"R": r, "S": s})
	if !j.Equal(relation.NewFromTuples(4, value.Ints(1, 10, 1, 100))) {
		t.Fatalf("join = %v", j)
	}
}

func TestEvalSetOps(t *testing.T) {
	a := ints([]int64{1}, []int64{2})
	b := ints([]int64{2}, []int64{3})
	env := Env{"A": a, "B": b}
	if got := MustEval(Union(Rel("A"), Rel("B")), env); got.Size() != 3 {
		t.Fatalf("union = %v", got)
	}
	if got := MustEval(Diff(Rel("A"), Rel("B")), env); !got.Equal(ints([]int64{1})) {
		t.Fatalf("diff = %v", got)
	}
	if got := MustEval(Intersect(Rel("A"), Rel("B")), env); !got.Equal(ints([]int64{2})) {
		t.Fatalf("intersect = %v", got)
	}
}

func TestArityValidation(t *testing.T) {
	env := ArityEnv{"R": 2, "S": 3}
	cases := []struct {
		q    Query
		want int
		ok   bool
	}{
		{Rel("R"), 2, true},
		{Rel("X"), 0, false},
		{Project([]int{0, 0, 1}, Rel("R")), 3, true},
		{Project([]int{2}, Rel("R")), 0, false},
		{Select(Eq(Col(1), ConstInt(5)), Rel("R")), 2, true},
		{Select(Eq(Col(2), ConstInt(5)), Rel("R")), 0, false},
		{Cross(Rel("R"), Rel("S")), 5, true},
		{Join(Rel("R"), Rel("S"), Eq(Col(4), Col(0))), 5, true},
		{Join(Rel("R"), Rel("S"), Eq(Col(5), Col(0))), 0, false},
		{Union(Rel("R"), Rel("S")), 0, false},
		{Union(Rel("R"), Rel("R")), 2, true},
		{Diff(Rel("R"), Project([]int{0, 1}, Rel("S"))), 2, true},
		{Intersect(Rel("R"), Rel("S")), 0, false},
	}
	for i, c := range cases {
		got, err := Arity(c.q, env)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("case %d (%s): got %d, %v; want %d", i, c.q, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d (%s): expected error", i, c.q)
		}
	}
}

func TestEvalSingleBindsAllNames(t *testing.T) {
	r := ints([]int64{1}, []int64{2})
	q := Union(Rel("V"), Rel("W"))
	got, err := EvalSingle(q, r)
	if err != nil || !got.Equal(r) {
		t.Fatalf("EvalSingle = %v, %v", got, err)
	}
}

func TestPredicateEvaluation(t *testing.T) {
	tp := value.Ints(1, 2, 2)
	cases := []struct {
		p    Predicate
		want bool
	}{
		{True(), true},
		{False(), false},
		{Eq(Col(1), Col(2)), true},
		{Eq(Col(0), Col(1)), false},
		{Ne(Col(0), Col(1)), true},
		{Compare(Col(0), OpLt, Col(1)), true},
		{Compare(Col(0), OpGe, Col(1)), false},
		{Compare(Col(2), OpLe, ConstInt(2)), true},
		{Compare(Col(2), OpGt, ConstInt(2)), false},
		{AndOf(Eq(Col(1), Col(2)), Ne(Col(0), Col(1))), true},
		{AndOf(Eq(Col(1), Col(2)), Eq(Col(0), Col(1))), false},
		{OrOf(Eq(Col(0), Col(1)), Eq(Col(1), Col(2))), true},
		{OrOf(), false},
		{AndOf(), true},
		{NotOf(Eq(Col(0), Col(1))), true},
	}
	for i, c := range cases {
		if got := c.p.Holds(tp); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestPredicatePositive(t *testing.T) {
	if !AndOf(Eq(Col(0), Col(1)), OrOf(Eq(Col(0), ConstInt(1)), True())).Positive() {
		t.Fatal("positive predicate misclassified")
	}
	if Ne(Col(0), Col(1)).Positive() || NotOf(Eq(Col(0), Col(1))).Positive() {
		t.Fatal("negative predicate misclassified")
	}
	if Compare(Col(0), OpLt, Col(1)).Positive() {
		t.Fatal("ordering comparison should not be positive")
	}
}

func TestCmpOpNegate(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %v changed it", op)
		}
	}
	a, b := value.Int(1), value.Int(2)
	for _, op := range ops {
		if op.Holds(a, b) == op.Negate().Holds(a, b) {
			t.Errorf("%v and its negation agree", op)
		}
	}
}

func TestFragmentMembership(t *testing.T) {
	sel := Select(Ne(Col(0), ConstInt(1)), Rel("R"))
	selPos := Select(Eq(Col(0), ConstInt(1)), Rel("R"))
	proj := Project([]int{0}, Rel("R"))
	cross := Cross(Rel("R"), Rel("R"))
	union := Union(Rel("R"), Rel("R"))
	diff := Diff(Rel("R"), Rel("R"))

	cases := []struct {
		q    Query
		f    Fragment
		want bool
	}{
		{sel, FragmentSP, true},
		{sel, FragmentSPlusP, false},
		{selPos, FragmentSPlusP, true},
		{proj, FragmentPJ, true},
		{cross, FragmentPJ, true},
		{cross, FragmentSP, false},
		{union, FragmentPU, true},
		{union, FragmentPJ, false},
		{diff, FragmentSPJU, false},
		{diff, FragmentRA, true},
		{Join(Rel("R"), Rel("R"), Eq(Col(0), Col(1))), FragmentSPlusPJ, true},
		{Join(Rel("R"), Rel("R"), Eq(Col(0), Col(1))), FragmentPJ, true},
		{Join(Rel("R"), Rel("R"), Ne(Col(0), Col(1))), FragmentSPlusPJ, false},
		{Join(Rel("R"), Rel("R"), True()), FragmentPJ, true},
		{Project([]int{0}, Select(Eq(Col(0), ConstInt(3)), Cross(Rel("R"), Rel("R")))), FragmentSPJU, true},
	}
	for i, c := range cases {
		if got := InFragment(c.q, c.f); got != c.want {
			t.Errorf("case %d: InFragment(%s, %s) = %v, want %v (ops %s)", i, c.q, c.f.Name, got, c.want, DescribeOperators(c.q))
		}
	}
}

func TestOperatorsAndDescribe(t *testing.T) {
	q := Union(Project([]int{0}, Select(Ne(Col(0), ConstInt(1)), Rel("R"))), Constant(ints([]int64{7})))
	desc := DescribeOperators(q)
	if desc != "S,P,U" {
		t.Fatalf("DescribeOperators = %q", desc)
	}
}

func TestQueryStrings(t *testing.T) {
	q := Project([]int{0, 2}, Select(AndOf(Eq(Col(0), Col(1)), Ne(Col(2), ConstInt(2))), Cross(Rel("R"), Rel("S"))))
	s := q.String()
	for _, want := range []string{"π[1,3]", "σ[", "$1=$2", "$3≠2", "R × S"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// Property: σ_true is identity, σ_false is empty and π over all columns is
// identity, on random unary/binary relations.
func TestQuickAlgebraLaws(t *testing.T) {
	mk := func(rows [][2]int64) *relation.Relation {
		r := relation.New(2)
		for _, row := range rows {
			r.Add(value.Ints(row[0], row[1]))
		}
		return r
	}
	f := func(rows [][2]int64) bool {
		r := mk(rows)
		env := Env{"R": r}
		if !MustEval(Select(True(), Rel("R")), env).Equal(r) {
			return false
		}
		if MustEval(Select(False(), Rel("R")), env).Size() != 0 {
			return false
		}
		return MustEval(Project([]int{0, 1}, Rel("R")), env).Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cross product distributes over union: A × (B ∪ C) = (A×B) ∪ (A×C).
func TestQuickCrossDistributesOverUnion(t *testing.T) {
	mk := func(xs []int64) *relation.Relation {
		r := relation.New(1)
		for _, x := range xs {
			r.Add(value.Ints(x))
		}
		return r
	}
	f := func(xs, ys, zs []int64) bool {
		env := Env{"A": mk(xs), "B": mk(ys), "C": mk(zs)}
		lhs := MustEval(Cross(Rel("A"), Union(Rel("B"), Rel("C"))), env)
		rhs := MustEval(Union(Cross(Rel("A"), Rel("B")), Cross(Rel("A"), Rel("C"))), env)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
