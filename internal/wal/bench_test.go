package wal

import (
	"fmt"
	"testing"
)

// benchAppend measures one durable catalog mutation (encode + frame + write,
// optionally fsync, with compaction every snapshotEvery records) — the
// overhead -data-dir adds to every PutTable. EXPERIMENTS.md E17 reports the
// same path via cmd/benchreport -only=e17.
func benchAppend(b *testing.B, opts Options) {
	store, _, _, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	tab := testTable(1)
	live := &State{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &Record{Kind: KindPut, Version: uint64(i + 1), Name: "Bench", Probabilistic: true, Table: tab}
		if err := live.Apply(rec); err != nil {
			b.Fatal(err)
		}
		if err := store.Append(rec, func() *State { return live }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	b.Run("nosync", func(b *testing.B) { benchAppend(b, Options{SnapshotEvery: -1}) })
	b.Run("fsync", func(b *testing.B) { benchAppend(b, Options{SnapshotEvery: -1, Fsync: true}) })
	b.Run("compact64", func(b *testing.B) { benchAppend(b, Options{SnapshotEvery: 64}) })
}

// BenchmarkEncodeTable isolates the canonical-encoding cost from the I/O.
func BenchmarkEncodeTable(b *testing.B) {
	for i := 0; i < 3; i++ {
		tab := testTable(i)
		b.Run(fmt.Sprintf("shape%d", i), func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				EncodeTable(tab)
			}
		})
	}
}
