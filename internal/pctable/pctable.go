package pctable

import (
	"fmt"
	"sort"
	"strings"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/ctable"
	"uncertaindb/internal/exec"
	"uncertaindb/internal/prob"
	"uncertaindb/internal/probcalc"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/value"
)

// PCTable is a probabilistic c-table (Definition 13): a c-table together
// with a finite probability distribution dom(x) for every variable x
// occurring in it. The variables are assumed independent; Mod(T) is the
// image of the product space of the variable distributions under ν ↦ ν(T).
type PCTable struct {
	table *ctable.CTable
	dists map[condition.Variable]*prob.Space
}

// New wraps a c-table into a pc-table with no distributions yet; attach
// them with SetDist before calling Mod.
func New(table *ctable.CTable) *PCTable {
	return &PCTable{table: table, dists: make(map[condition.Variable]*prob.Space)}
}

// NewWithArity creates a pc-table over a fresh empty c-table.
func NewWithArity(arity int) *PCTable { return New(ctable.New(arity)) }

// Table returns the underlying c-table.
func (t *PCTable) Table() *ctable.CTable { return t.table }

// Arity returns the arity of the table.
func (t *PCTable) Arity() int { return t.table.Arity() }

// NumRows returns the number of rows of the underlying c-table.
func (t *PCTable) NumRows() int { return t.table.NumRows() }

// Row returns the i-th row of the underlying c-table as an exec.Row view;
// with Arity, NumRows and EachDomain it makes *PCTable an exec.Model, so the
// shared operator core scans pc-tables directly.
func (t *PCTable) Row(i int) exec.Row { return t.table.Row(i) }

// EachDomain visits the declared finite variable domains (exec.Model).
func (t *PCTable) EachDomain(f func(condition.Variable, *value.Domain)) { t.table.EachDomain(f) }

// AddRow adds a row to the underlying c-table.
func (t *PCTable) AddRow(terms []condition.Term, cond condition.Condition) *PCTable {
	t.table.AddRow(terms, cond)
	return t
}

// AddConstRow adds a constant row to the underlying c-table.
func (t *PCTable) AddConstRow(tuple value.Tuple, cond condition.Condition) *PCTable {
	t.table.AddConstRow(tuple, cond)
	return t
}

// SetDist attaches the distribution of variable x. The c-table's finite
// domain for x is set to the support of the distribution so that the
// incompleteness semantics and the probabilistic semantics agree.
func (t *PCTable) SetDist(x string, dist map[value.Value]float64) *PCTable {
	space := prob.MustNewValueSpace(dist)
	t.dists[condition.Variable(x)] = space
	support := make([]value.Value, 0, space.Size())
	for _, o := range space.Outcomes() {
		support = append(support, o.ValuePayload())
	}
	t.table.SetDomain(x, value.NewDomain(support...))
	return t
}

// SetSpace attaches an already-constructed distribution space to variable x.
// Spaces are immutable, so the space is shared, not copied. Like SetDist, the
// c-table's finite domain for x is set to the support of the distribution;
// callers that declared a wider domain re-apply it afterwards.
func (t *PCTable) SetSpace(x string, space *prob.Space) *PCTable {
	t.dists[condition.Variable(x)] = space
	support := make([]value.Value, 0, space.Size())
	for _, o := range space.Outcomes() {
		support = append(support, o.ValuePayload())
	}
	t.table.SetDomain(x, value.NewDomain(support...))
	return t
}

// SetBoolDist attaches a Bernoulli distribution P[x=true] = p, the common
// case for boolean pc-tables and probabilistic ?-tables.
func (t *PCTable) SetBoolDist(x string, p float64) *PCTable {
	return t.SetDist(x, map[value.Value]float64{value.Bool(true): p, value.Bool(false): 1 - p})
}

// Dist returns the distribution of variable x (nil if not set).
func (t *PCTable) Dist(x condition.Variable) *prob.Space { return t.dists[x] }

// EachDist visits every attached distribution (iteration order is
// unspecified). Unlike iterating Vars, it never scans the rows, so the patch
// layer can carry distributions to a patched table in O(#distributions).
func (t *PCTable) EachDist(f func(condition.Variable, *prob.Space)) {
	for x, d := range t.dists {
		f(x, d)
	}
}

// HasDists reports whether any distribution is attached (regardless of
// whether its variable occurs in the rows).
func (t *PCTable) HasDists() bool { return len(t.dists) > 0 }

// Vars returns the variables of the underlying c-table.
func (t *PCTable) Vars() []condition.Variable { return t.table.Vars() }

// IsBoolean reports whether the underlying c-table is a boolean c-table
// (variables only in conditions, boolean domains).
func (t *PCTable) IsBoolean() bool { return t.table.IsBoolean() }

// Validate checks that every variable of the table has a distribution.
func (t *PCTable) Validate() error {
	for _, x := range t.table.Vars() {
		if t.dists[x] == nil {
			return fmt.Errorf("pctable: variable %s has no distribution", x)
		}
	}
	return nil
}

// Copy returns an independent copy (distributions are shared, they are
// immutable).
func (t *PCTable) Copy() *PCTable {
	c := New(t.table.Copy())
	for x, d := range t.dists {
		c.dists[x] = d
	}
	return c
}

// CloneWithRows returns a pc-table holding exactly the given rows while
// carrying this table's variable distributions and declared domains. Rows are
// adopted as-is (term slices shared), matching the operator core's row
// discipline. Incremental view maintenance uses this to rebuild a maintained
// answer (old rows + delta rows) and to scope PossibleTuples to a suspect
// row subset under the full table's distribution context.
func (t *PCTable) CloneWithRows(rows []exec.Row) *PCTable {
	c := New(ctable.FromRows(t.table.Arity(), append([]exec.Row(nil), rows...)))
	for x, d := range t.dists {
		c.dists[x] = d
	}
	t.table.EachDomain(func(x condition.Variable, dom *value.Domain) {
		c.table.SetDomain(string(x), dom)
	})
	return c
}

// WithDists returns a view of the pc-table with the distributions of the
// given variables replaced — the what-if evaluation view. The underlying
// c-table is shared (reweighting never changes the rows); every overridden
// variable must already have a distribution, and the override's support must
// stay within the original support, because the declared domains (and any
// circuit compiled against them) fix the value space.
func (t *PCTable) WithDists(over map[condition.Variable]*prob.Space) (*PCTable, error) {
	c := &PCTable{table: t.table, dists: make(map[condition.Variable]*prob.Space, len(t.dists))}
	for x, d := range t.dists {
		c.dists[x] = d
	}
	for x, d := range over {
		base := t.dists[x]
		if base == nil {
			return nil, fmt.Errorf("pctable: variable %s has no distribution to override", x)
		}
		if d == nil || d.Size() == 0 {
			return nil, fmt.Errorf("pctable: empty override distribution for variable %s", x)
		}
		allowed := make(map[string]bool, base.Size())
		for _, o := range base.Outcomes() {
			allowed[o.Key] = true
		}
		for _, o := range d.Outcomes() {
			if !allowed[o.Key] {
				return nil, fmt.Errorf("pctable: override value %s for variable %s is outside the declared support", o.ValuePayload(), x)
			}
		}
		c.dists[x] = d
	}
	return c, nil
}

// valuationProbability returns the product probability of a valuation of
// the given variables.
func (t *PCTable) valuationProbability(vars []condition.Variable, v condition.Valuation) float64 {
	p := 1.0
	for _, x := range vars {
		p *= t.dists[x].P(v[x].Key())
	}
	return p
}

// Mod returns the probabilistic database represented by the pc-table: the
// image of the product of the variable distributions under ν ↦ ν(T)
// (Definition 13 and the construction below it).
func (t *PCTable) Mod() (*PDatabase, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	vars := t.table.Vars()
	out := NewPDatabase(t.table.Arity())
	var applyErr error
	condition.ForEachValuation(vars, t.table, func(v condition.Valuation) bool {
		inst, err := t.table.Apply(v)
		if err != nil {
			applyErr = err
			return false
		}
		out.AddWorld(inst, t.valuationProbability(vars, v))
		return true
	})
	if applyErr != nil {
		return nil, applyErr
	}
	if err := out.Check(); err != nil {
		return nil, err
	}
	return out, nil
}

// MustMod is Mod that panics on error.
func (t *PCTable) MustMod() *PDatabase {
	db, err := t.Mod()
	if err != nil {
		panic(err)
	}
	return db
}

// ConditionProbability returns the probability that the condition c holds
// under the independent variable distributions of the table. It is computed
// by the decomposition engine in internal/probcalc (independence splits,
// exclusive-disjunction splits, Shannon expansion with memoization), which
// enumerates valuations only for tiny residual subproblems — the scalable
// successor of the brute force kept in ConditionProbabilityEnum.
func (t *PCTable) ConditionProbability(c condition.Condition) (float64, error) {
	return probcalc.Probability(c, t)
}

// ConditionProbabilityEnum is the brute-force reference implementation: it
// enumerates every valuation of the variables occurring in c, which is
// exponential in their number. It is kept as the baseline of the E12
// crossover benchmarks and as the -engine=enum path of cmd/pctable.
func (t *PCTable) ConditionProbabilityEnum(c condition.Condition) (float64, error) {
	vars := condition.Vars(c)
	for _, x := range vars {
		if t.dists[x] == nil {
			return 0, fmt.Errorf("pctable: variable %s has no distribution", x)
		}
	}
	p := 0.0
	var evalErr error
	condition.ForEachValuation(vars, t.table, func(v condition.Valuation) bool {
		holds, err := c.Eval(v)
		if err != nil {
			evalErr = err
			return false
		}
		if holds {
			p += t.valuationProbability(vars, v)
		}
		return true
	})
	if evalErr != nil {
		return 0, evalErr
	}
	return p, nil
}

// EvalQuery implements Theorem 9: pc-tables are closed under the relational
// algebra. The result is the pc-table whose underlying c-table is q̄(T) and
// whose variable distributions are unchanged.
func (t *PCTable) EvalQuery(q ra.Query) (*PCTable, error) {
	res, err := ctable.EvalQuery(q, t.table)
	if err != nil {
		return nil, err
	}
	out := New(res)
	for x, d := range t.dists {
		out.dists[x] = d
	}
	return out, nil
}

// TupleProbability returns the marginal probability that the tuple occurs
// in the represented instance, computed from the lineage condition
//
//	⋁_{rows (u:φ)} ( φ ∧ u = t )
//
// rather than by enumerating possible worlds.
func (t *PCTable) TupleProbability(tuple value.Tuple) (float64, error) {
	if len(tuple) != t.table.Arity() {
		return 0, fmt.Errorf("pctable: tuple arity %d, table arity %d", len(tuple), t.table.Arity())
	}
	lineage := t.Lineage(tuple)
	return t.ConditionProbability(lineage)
}

// TupleProbabilityEnum is TupleProbability computed by brute-force valuation
// enumeration instead of the decomposition engine; see
// ConditionProbabilityEnum.
func (t *PCTable) TupleProbabilityEnum(tuple value.Tuple) (float64, error) {
	if len(tuple) != t.table.Arity() {
		return 0, fmt.Errorf("pctable: tuple arity %d, table arity %d", len(tuple), t.table.Arity())
	}
	return t.ConditionProbabilityEnum(t.Lineage(tuple))
}

// Lineage returns the boolean condition (over the table's variables) that
// is true exactly when the given tuple belongs to the represented instance
// — the "lineage"/why-provenance reading of c-table conditions discussed in
// Section 9 of the paper.
func (t *PCTable) Lineage(tuple value.Tuple) condition.Condition {
	var disj []condition.Condition
	for _, row := range t.table.Rows() {
		conds := []condition.Condition{row.Cond}
		matches := true
		for i, term := range row.Terms {
			if term.IsVar {
				conds = append(conds, condition.Eq(term, condition.Const(tuple[i])))
				continue
			}
			if term.Const != tuple[i] {
				matches = false
				break
			}
		}
		if matches {
			disj = append(disj, condition.And(conds...))
		}
	}
	return condition.Simplify(condition.Or(disj...))
}

// PossibleTuples returns every tuple some row of the table can instantiate
// to over the variable supports, deduplicated and sorted. Unlike world
// enumeration (Mod), the cost is per-row exponential only in the variables
// occurring in that row's *terms* (at most the arity), never in the total
// variable count — it is the scalable way to discover candidate tuples for
// marginal computation. Rows whose condition is syntactically false are
// skipped; a returned tuple may still have marginal probability zero if its
// lineage is unsatisfiable in a non-obvious way.
func (t *PCTable) PossibleTuples() ([]value.Tuple, error) {
	seen := make(map[string]value.Tuple)
	for _, row := range t.table.Rows() {
		if _, isFalse := row.Cond.(condition.FalseCond); isFalse {
			continue
		}
		var rowVars []condition.Variable
		inRow := make(map[condition.Variable]bool)
		for _, term := range row.Terms {
			if term.IsVar && !inRow[term.Var] {
				inRow[term.Var] = true
				rowVars = append(rowVars, term.Var)
			}
		}
		for _, x := range rowVars {
			if t.dists[x] == nil {
				return nil, fmt.Errorf("pctable: variable %s has no distribution", x)
			}
		}
		build := func(v condition.Valuation) {
			tuple := make(value.Tuple, len(row.Terms))
			for i, term := range row.Terms {
				if term.IsVar {
					tuple[i] = v[term.Var]
				} else {
					tuple[i] = term.Const
				}
			}
			seen[tuple.Key()] = tuple
		}
		if len(rowVars) == 0 {
			build(nil)
			continue
		}
		condition.ForEachValuation(rowVars, t.table, func(v condition.Valuation) bool {
			build(v)
			return true
		})
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Tuple, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out, nil
}

// TupleProbabilities returns the marginal probability of every possible
// tuple of the table: candidates are discovered from the rows
// (PossibleTuples) — not by enumerating possible worlds — and probabilities
// are computed from lineage conditions by one shared decomposition
// evaluator, whose memo cache is reused across tuples. Candidates whose
// lineage is false or whose marginal is zero are dropped (candidate
// discovery over-approximates: a tuple matching a row pattern may have
// unsatisfiable lineage). The whole pipeline avoids anything exponential in
// the total variable count.
func (t *PCTable) TupleProbabilities() ([]TupleProb, error) {
	candidates, err := t.PossibleTuples()
	if err != nil {
		return nil, err
	}
	ev := probcalc.New(t)
	out := make([]TupleProb, 0, len(candidates))
	for _, tp := range candidates {
		lineage := t.Lineage(tp)
		if _, isFalse := lineage.(condition.FalseCond); isFalse {
			continue
		}
		p, err := ev.Probability(lineage)
		if err != nil {
			return nil, err
		}
		if p == 0 {
			continue
		}
		out = append(out, TupleProb{Tuple: tp, P: p})
	}
	return out, nil
}

// AnswerTupleProbabilities evaluates q over the pc-table (Theorem 9) and
// returns the marginal probability of every possible answer tuple, the
// problem studied by Fuhr–Rölleke, Zimányi and ProbView; see
// TupleProbabilities for how the answers are discovered and computed.
func (t *PCTable) AnswerTupleProbabilities(q ra.Query) ([]TupleProb, error) {
	answer, err := t.EvalQuery(q)
	if err != nil {
		return nil, err
	}
	return answer.TupleProbabilities()
}

// String renders the pc-table: the underlying c-table plus the variable
// distributions.
func (t *PCTable) String() string {
	var b strings.Builder
	b.WriteString(strings.TrimSuffix(t.table.String(), "\n"))
	b.WriteString("\n")
	vars := t.table.Vars()
	for _, x := range vars {
		if d := t.dists[x]; d != nil {
			fmt.Fprintf(&b, "  %s ~ %s\n", x, d)
		}
	}
	return b.String()
}
