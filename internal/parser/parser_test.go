package parser

import (
	"math"
	"strings"
	"testing"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/relation"
	"uncertaindb/internal/value"
)

const coursesText = `
# The pc-table from the paper's introduction.
table Takes arity 2
row 'Alice', x
row 'Bob',   x      | x = 'phys' || x = 'chem'
row 'Theo',  'math' | t = 1
dist x = {'math':0.3, 'phys':0.3, 'chem':0.4}
dist t = {0:0.15, 1:0.85}
`

func TestParseCoursesTable(t *testing.T) {
	parsed, err := ParseTableString(coursesText)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != "Takes" || parsed.CTable.Arity() != 2 || parsed.CTable.NumRows() != 3 {
		t.Fatalf("parsed shape wrong: %+v", parsed)
	}
	if !parsed.HasDistributions {
		t.Fatal("distributions missing")
	}
	db, err := parsed.PCTable.Mod()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
	got := db.TupleProbability(value.NewTuple(value.Str("Bob"), value.Str("chem")))
	if math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("P(Bob,chem) = %g", got)
	}
	got = db.TupleProbability(value.NewTuple(value.Str("Theo"), value.Str("math")))
	if math.Abs(got-0.85) > 1e-9 {
		t.Fatalf("P(Theo,math) = %g", got)
	}
}

func TestParseTableWithDomOnly(t *testing.T) {
	text := `
table R arity 2
row 1, x
row x, 1
dom x = {1, 2}
`
	parsed, err := ParseTableString(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.HasDistributions {
		t.Fatal("no distributions expected")
	}
	db, err := parsed.CTable.Mod()
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 2 {
		t.Fatalf("Mod size = %d", db.Size())
	}
}

func TestParseTableErrors(t *testing.T) {
	cases := []string{
		"row 1, 2",                               // row before table
		"table R arity 0",                        // bad arity
		"table R arity 2\nrow 1",                 // wrong cell count
		"table R arity 1\nrow 1\nbogus x",        // unknown directive
		"table R arity 1\nrow 'unterminated",     // lexer error
		"table R arity 1\nrow 1\ndom x = {}",     // empty domain
		"table R arity 1\nrow 1 | x <",           // bad condition
		"",                                       // no table at all
		"table R arity 1\nrow 1\ndist x = {1:2}", // probability out of range
	}
	for i, c := range cases {
		if _, err := ParseTableString(c); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestParseCondition(t *testing.T) {
	c, err := ParseCondition("x = y && z != 2 || !(t = true)")
	if err != nil {
		t.Fatal(err)
	}
	val := condition.Valuation{
		"x": value.Int(1), "y": value.Int(2), "z": value.Int(3), "t": value.Bool(false),
	}
	got, err := c.Eval(val)
	if err != nil || !got {
		t.Fatalf("eval = %v, %v", got, err)
	}
	// Unicode operators round-trip: parse the String() rendering back.
	c2, err := ParseCondition(c.String())
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", c.String(), err)
	}
	if !condition.Equivalent(c, c2, condition.UniformDomains{Domain: value.IntRange(1, 3).Union(value.BoolDomain())}) {
		t.Fatal("re-parsed condition differs")
	}
}

func TestParseConditionErrors(t *testing.T) {
	for i, s := range []string{"x =", "x ? y", "(x = 1", "x = 1 &&", "x = 1 extra"} {
		if _, err := ParseCondition(s); err == nil {
			t.Errorf("case %d: expected error for %q", i, s)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("project[1]( select[$1 = 1 && $2 != 4]( R ) ) union project[2](R)")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.FromInts([]int64{1, 2}, []int64{3, 4})
	got, err := ra.EvalSingle(q, r)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromInts([]int64{1}, []int64{2}, []int64{4})
	if !got.Equal(want) {
		t.Fatalf("eval = %v, want %v", got, want)
	}
}

func TestParseQueryJoinAndSetOps(t *testing.T) {
	q, err := ParseQuery("(R join[$1 = $3] R) minus (R x R)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.(ra.DiffQ); !ok {
		t.Fatalf("expected difference at top level, got %T", q)
	}
	r := relation.FromInts([]int64{1, 2})
	got, err := ra.EvalSingle(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 {
		t.Fatalf("difference should be empty, got %v", got)
	}
	q2, err := ParseQuery("R intersect R")
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := ra.EvalSingle(q2, r)
	if !got2.Equal(r) {
		t.Fatal("intersect wrong")
	}
}

func TestParseQueryPredicateOperators(t *testing.T) {
	q, err := ParseQuery("select[$1 >= 2 && !($1 > 3)](R)")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.FromInts([]int64{1}, []int64{2}, []int64{3}, []int64{4})
	got, _ := ra.EvalSingle(q, r)
	if !got.Equal(relation.FromInts([]int64{2}, []int64{3})) {
		t.Fatalf("eval = %v", got)
	}
}

func TestParseQueryErrors(t *testing.T) {
	for i, s := range []string{
		"select[$1 = 1](", "project[0](R)", "project[a](R)", "R join R",
		"select[$x = 1](R)", "R union", "", "R ) extra",
	} {
		if _, err := ParseQuery(s); err == nil {
			t.Errorf("case %d: expected error for %q", i, s)
		}
	}
}

func TestLexerStringsAndComments(t *testing.T) {
	lx, err := lex("  'a b' # comment\n 42 x")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{}
	for {
		tok := lx.next()
		if tok.kind == tokEOF {
			break
		}
		kinds = append(kinds, tok.kind)
	}
	if len(kinds) != 3 || kinds[0] != tokString || kinds[1] != tokNumber || kinds[2] != tokIdent {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestParseFromReaderError(t *testing.T) {
	if _, err := ParseTable(strings.NewReader("table R arity two")); err == nil {
		t.Fatal("expected error")
	}
}
