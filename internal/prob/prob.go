// Package prob implements the elementary finite probability theory used by
// Sections 6–8 of the paper: finite probability spaces (Definition 9's
// (Ω, p) formulation), product spaces (Definition 12) and image spaces
// (Definition 10). Outcomes are kept generic via string keys plus an
// attached payload, which is all the probabilistic table models need.
package prob

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"uncertaindb/internal/value"
)

// Tolerance is the absolute tolerance used when checking that outcome
// probabilities sum to one.
const Tolerance = 1e-9

// Space is a finite probability space: a finite set of outcomes with an
// outcome probability assignment summing to one. Outcomes are identified by
// unique keys; each outcome may carry an arbitrary payload.
type Space struct {
	outcomes []Outcome
	index    map[string]int
}

// Outcome is one element of a finite probability space.
type Outcome struct {
	Key     string
	Payload interface{}
	P       float64
}

// New builds a finite probability space from the given outcomes. It returns
// an error if a key repeats, a probability is negative, or the
// probabilities do not sum to 1 within Tolerance.
func New(outcomes []Outcome) (*Space, error) {
	s := &Space{index: make(map[string]int, len(outcomes))}
	sum := 0.0
	for _, o := range outcomes {
		if o.P < 0 {
			return nil, fmt.Errorf("prob: negative probability %g for outcome %q", o.P, o.Key)
		}
		if _, dup := s.index[o.Key]; dup {
			return nil, fmt.Errorf("prob: duplicate outcome %q", o.Key)
		}
		s.index[o.Key] = len(s.outcomes)
		s.outcomes = append(s.outcomes, o)
		sum += o.P
	}
	if len(outcomes) == 0 {
		return nil, fmt.Errorf("prob: a probability space needs at least one outcome")
	}
	if math.Abs(sum-1) > Tolerance {
		return nil, fmt.Errorf("prob: outcome probabilities sum to %g, not 1", sum)
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(outcomes []Outcome) *Space {
	s, err := New(outcomes)
	if err != nil {
		panic(err)
	}
	return s
}

// NewValueSpace builds a space whose outcomes are domain values with the
// given probabilities — the dom(x) distributions attached to pc-table
// variables (Definition 13).
func NewValueSpace(dist map[value.Value]float64) (*Space, error) {
	keys := make([]value.Value, 0, len(dist))
	for v := range dist {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	outcomes := make([]Outcome, 0, len(keys))
	for _, v := range keys {
		outcomes = append(outcomes, Outcome{Key: v.Key(), Payload: v, P: dist[v]})
	}
	return New(outcomes)
}

// MustNewValueSpace is NewValueSpace that panics on error.
func MustNewValueSpace(dist map[value.Value]float64) *Space {
	s, err := NewValueSpace(dist)
	if err != nil {
		panic(err)
	}
	return s
}

// Bernoulli returns the two-outcome boolean space with P[true] = p — the
// space B_t used to give semantics to p-?-tables (Section 7).
func Bernoulli(p float64) (*Space, error) {
	return NewValueSpace(map[value.Value]float64{
		value.Bool(true):  p,
		value.Bool(false): 1 - p,
	})
}

// Size returns the number of outcomes.
func (s *Space) Size() int { return len(s.outcomes) }

// Outcomes returns the outcomes in insertion order.
func (s *Space) Outcomes() []Outcome { return s.outcomes }

// P returns the probability of the outcome with the given key (0 if absent).
func (s *Space) P(key string) float64 {
	if i, ok := s.index[key]; ok {
		return s.outcomes[i].P
	}
	return 0
}

// PEvent returns the probability of the event defined by the predicate.
func (s *Space) PEvent(pred func(Outcome) bool) float64 {
	p := 0.0
	for _, o := range s.outcomes {
		if pred(o) {
			p += o.P
		}
	}
	return p
}

// ValuePayload returns the value payload of an outcome, for spaces built
// with NewValueSpace; it panics if the payload is not a value.
func (o Outcome) ValuePayload() value.Value {
	v, ok := o.Payload.(value.Value)
	if !ok {
		panic(fmt.Sprintf("prob: outcome %q has no value payload", o.Key))
	}
	return v
}

// Product returns the product space of the given spaces (Definition 12):
// outcomes are tuples of outcomes, probabilities multiply. Payloads of the
// product outcomes are []Outcome slices holding the component outcomes, and
// keys are the joined component keys.
func Product(spaces ...*Space) (*Space, error) {
	if len(spaces) == 0 {
		return New([]Outcome{{Key: "", Payload: []Outcome{}, P: 1}})
	}
	outcomes := []Outcome{{Key: "", Payload: []Outcome{}, P: 1}}
	for _, sp := range spaces {
		var next []Outcome
		for _, acc := range outcomes {
			for _, o := range sp.outcomes {
				combined := append(append([]Outcome{}, acc.Payload.([]Outcome)...), o)
				key := acc.Key
				if key != "" {
					key += "⊗"
				}
				key += strings.ReplaceAll(o.Key, "⊗", "⊗⊗")
				next = append(next, Outcome{Key: key, Payload: combined, P: acc.P * o.P})
			}
		}
		outcomes = next
	}
	return New(outcomes)
}

// Image returns the image of the space under f (Definition 10): outcomes
// are merged by the key returned by f, probabilities add. The payload of a
// merged outcome is the payload returned by f for (any) contributing
// outcome — f must return the same payload for outcomes with the same key.
func (s *Space) Image(f func(Outcome) (string, interface{})) (*Space, error) {
	merged := make(map[string]*Outcome)
	var order []string
	for _, o := range s.outcomes {
		key, payload := f(o)
		if m, ok := merged[key]; ok {
			m.P += o.P
			continue
		}
		merged[key] = &Outcome{Key: key, Payload: payload, P: o.P}
		order = append(order, key)
	}
	out := make([]Outcome, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	return New(out)
}

// String renders the space as a list of outcome:probability pairs.
func (s *Space) String() string {
	parts := make([]string, len(s.outcomes))
	for i, o := range s.outcomes {
		parts[i] = fmt.Sprintf("%s:%.4g", o.Key, o.P)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ApproxEqual reports whether two spaces have the same outcome keys with
// probabilities equal within the tolerance.
func (s *Space) ApproxEqual(t *Space, tol float64) bool {
	if len(s.outcomes) != len(t.outcomes) {
		// Allow outcomes of probability ~0 to be missing on either side.
		return approxSubset(s, t, tol) && approxSubset(t, s, tol)
	}
	return approxSubset(s, t, tol) && approxSubset(t, s, tol)
}

func approxSubset(s, t *Space, tol float64) bool {
	for _, o := range s.outcomes {
		if math.Abs(o.P-t.P(o.Key)) > tol {
			return false
		}
	}
	return true
}
