// Package workload generates the synthetic inputs used by the benchmark
// harness and the examples. The paper has no datasets of its own, so every
// experiment is driven by scalable versions of the paper's running examples
// plus random tables with controlled shape (rows, arity, variables, domain
// size, condition size).
package workload

import (
	"fmt"
	"math/rand"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/ctable"
	"uncertaindb/internal/incomplete"
	"uncertaindb/internal/pctable"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/relation"
	"uncertaindb/internal/value"
)

// CTableSpec controls random c-table generation.
type CTableSpec struct {
	Rows       int
	Arity      int
	NumVars    int // number of distinct variables
	DomainSize int // size of dom(x) for every variable
	PVarCell   float64
	PCondAtom  float64 // probability a row gets each of up to two condition atoms
	Seed       int64
}

// RandomCTable generates a finite-domain c-table according to the spec.
func RandomCTable(spec CTableSpec) *ctable.CTable {
	rng := rand.New(rand.NewSource(spec.Seed))
	t := ctable.New(spec.Arity)
	varNames := make([]string, spec.NumVars)
	dom := value.IntRange(1, int64(spec.DomainSize))
	for i := range varNames {
		varNames[i] = fmt.Sprintf("x%d", i+1)
		t.SetDomain(varNames[i], dom)
	}
	randTerm := func() condition.Term {
		if spec.NumVars > 0 && rng.Float64() < spec.PVarCell {
			return condition.Var(varNames[rng.Intn(spec.NumVars)])
		}
		return condition.ConstInt(int64(rng.Intn(spec.DomainSize) + 1))
	}
	randAtom := func() condition.Condition {
		l := condition.Var(varNames[rng.Intn(spec.NumVars)])
		var r condition.Term
		if rng.Intn(2) == 0 {
			r = condition.Var(varNames[rng.Intn(spec.NumVars)])
		} else {
			r = condition.ConstInt(int64(rng.Intn(spec.DomainSize) + 1))
		}
		if rng.Intn(2) == 0 {
			return condition.Eq(l, r)
		}
		return condition.Neq(l, r)
	}
	for i := 0; i < spec.Rows; i++ {
		terms := make([]condition.Term, spec.Arity)
		for j := range terms {
			terms[j] = randTerm()
		}
		var conds []condition.Condition
		if spec.NumVars > 0 {
			for a := 0; a < 2; a++ {
				if rng.Float64() < spec.PCondAtom {
					conds = append(conds, randAtom())
				}
			}
		}
		t.AddRow(terms, condition.And(conds...))
	}
	return t
}

// RandomPQTable generates a p-?-table with the given number of tuples of
// the given arity, values drawn from [1, domain], and independent tuple
// probabilities drawn uniformly from (0, 1).
func RandomPQTable(rows, arity int, domain int64, seed int64) *pctable.PQTable {
	rng := rand.New(rand.NewSource(seed))
	t := pctable.NewPQTable(arity)
	seen := make(map[string]bool)
	for len(seen) < rows {
		tuple := make(value.Tuple, arity)
		for i := range tuple {
			tuple[i] = value.Int(rng.Int63n(domain) + 1)
		}
		if seen[tuple.Key()] {
			continue
		}
		seen[tuple.Key()] = true
		t.Add(tuple, 0.05+0.9*rng.Float64())
	}
	return t
}

// RandomRelation generates a conventional instance with the given number of
// distinct tuples.
func RandomRelation(rows, arity int, domain int64, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(arity)
	for r.Size() < rows {
		tuple := make(value.Tuple, arity)
		for i := range tuple {
			tuple[i] = value.Int(rng.Int63n(domain) + 1)
		}
		r.Add(tuple)
	}
	return r
}

// RandomIDatabase generates a finite incomplete database with the given
// number of distinct worlds, each with up to maxTuples tuples.
func RandomIDatabase(worlds, maxTuples, arity int, domain int64, seed int64) *incomplete.IDatabase {
	rng := rand.New(rand.NewSource(seed))
	db := incomplete.New(arity)
	for db.Size() < worlds {
		rows := rng.Intn(maxTuples + 1)
		inst := relation.New(arity)
		for inst.Size() < rows {
			tuple := make(value.Tuple, arity)
			for i := range tuple {
				tuple[i] = value.Int(rng.Int63n(domain) + 1)
			}
			inst.Add(tuple)
		}
		db.Add(inst)
	}
	return db
}

// Courses generates a scaled version of the paper's introductory example: a
// pc-table Takes(student, course) with the given number of students, each
// taking one of numCourses courses according to a skewed distribution, plus
// a fraction of "follower" students whose enrolment is conditioned on the
// course choice of student 0 (the Bob/Alice pattern) and a fraction of
// tuples guarded by an independent boolean (the Theo pattern).
func Courses(students, numCourses int, seed int64) *pctable.PCTable {
	rng := rand.New(rand.NewSource(seed))
	t := pctable.NewWithArity(2)
	courseValue := func(c int) value.Value { return value.Str(fmt.Sprintf("course%d", c)) }

	courseDist := func() map[value.Value]float64 {
		// A simple skew: course i gets weight 1/(i+1), normalised.
		weights := make([]float64, numCourses)
		total := 0.0
		for i := range weights {
			weights[i] = 1 / float64(i+1)
			total += weights[i]
		}
		dist := make(map[value.Value]float64, numCourses)
		for i, w := range weights {
			dist[courseValue(i)] = w / total
		}
		return dist
	}

	for s := 0; s < students; s++ {
		student := value.Str(fmt.Sprintf("student%d", s))
		switch {
		case s > 0 && s%5 == 1:
			// Follower: takes the same course as student 0, provided that
			// course is not course0 (the Bob pattern).
			t.AddRow(
				[]condition.Term{condition.Const(student), condition.Var("c0")},
				condition.Neq(condition.Var("c0"), condition.Const(courseValue(0))))
		case s%5 == 2:
			// Optional attendee: fixed course guarded by a boolean (Theo).
			b := fmt.Sprintf("b%d", s)
			t.AddRow(
				[]condition.Term{condition.Const(student), condition.Const(courseValue(rng.Intn(numCourses)))},
				condition.IsTrueVar(b))
			t.SetBoolDist(b, 0.5+0.5*rng.Float64())
		default:
			// Independent chooser with a private course variable (Alice).
			x := fmt.Sprintf("c%d", s)
			t.AddRow([]condition.Term{condition.Const(student), condition.Var(x)}, nil)
			t.SetDist(x, courseDist())
		}
	}
	if _, ok := firstVar(t, "c0"); !ok {
		// Ensure c0 exists even for tiny inputs (student 0 is always a chooser).
		t.SetDist("c0", courseDist())
	}
	return t
}

func firstVar(t *pctable.PCTable, name string) (condition.Variable, bool) {
	for _, x := range t.Vars() {
		if string(x) == name && t.Dist(x) != nil {
			return x, true
		}
	}
	return "", false
}

// SelectionQuery returns σ_{$col = v}(V).
func SelectionQuery(col int, v value.Value) ra.Query {
	return ra.Select(ra.Eq(ra.Col(col), ra.Const(v)), ra.Rel("V"))
}

// ProjectionQuery returns π_{cols}(V).
func ProjectionQuery(cols ...int) ra.Query { return ra.Project(cols, ra.Rel("V")) }

// SelfJoinQuery returns V ⋈_{$l = $r} V with r indexed into the second copy.
func SelfJoinQuery(arity, l, r int) ra.Query {
	return ra.Join(ra.Rel("V"), ra.Rel("V"), ra.Eq(ra.Col(l), ra.Col(arity+r)))
}

// EquiJoin builds the E15 workload: two 2-column c-tables R and S with rows
// ground rows each — row i of either table has the unique integer key i in
// column 1 and a distinct payload in column 2, so the equi-join
// R ⋈_{$1=$3} S is maximally selective (every key matches exactly one row
// per side) — plus varRows rows per table whose key cell is a variable over
// a small shared domain (the symbolic residual every hash probe must also
// consider). The returned query is the plain equi-join, so the measured
// work is the join itself.
func EquiJoin(rows, varRows int) (ctable.Env, ra.Query) {
	dom := value.IntRange(0, 2)
	build := func(payloadBase int64, varPrefix string) *ctable.CTable {
		t := ctable.New(2)
		for i := 0; i < rows; i++ {
			t.AddRow([]condition.Term{
				condition.ConstInt(int64(i)),
				condition.ConstInt(payloadBase + int64(i)),
			}, nil)
		}
		for i := 0; i < varRows; i++ {
			x := fmt.Sprintf("%s%d", varPrefix, i)
			t.SetDomain(x, dom)
			t.AddRow([]condition.Term{
				condition.Var(x),
				condition.ConstInt(payloadBase - int64(i) - 1),
			}, nil)
		}
		return t
	}
	env := ctable.Env{
		"R": build(1_000_000, "r"),
		"S": build(2_000_000, "s"),
	}
	return env, ra.Join(ra.Rel("R"), ra.Rel("S"), ra.Eq(ra.Col(0), ra.Col(2)))
}
