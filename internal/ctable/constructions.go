package ctable

import (
	"fmt"
	"math/bits"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/incomplete"
	"uncertaindb/internal/ra"
	"uncertaindb/internal/relation"
	"uncertaindb/internal/value"
)

// This file implements the constructive theorems of Section 3 of the paper:
//
//   - Theorem 1: every c-table T is RA-definable, i.e. Mod(T) = q(Mod(Z_k))
//     for an SPJU query q built from T (RADefinabilityQuery).
//   - Proposition 4: Z_n is RA-definable from the zero-information database
//     N (Proposition4Query builds the witnessing query).
//   - Theorem 3: boolean c-tables are finitely complete
//     (BooleanCTableFromIDatabase).

// RADefinabilityQuery implements the construction in the proof of
// Theorem 1: given a c-table T with k variables it returns the SPJU query q
// over a single input relation of arity k such that q(Mod(Z_k)) = Mod(T)
// (equivalently q̄(Z_k) ≡ T), together with k. The input relation name used
// by the query is "V".
//
// For a table with no variables the returned k is 1 (Z_1 is used as a
// trivially non-empty source, exactly as the paper's construction needs at
// least one input column to select from); the query simply ignores it.
func RADefinabilityQuery(t *CTable) (ra.Query, int, error) {
	vars := t.Vars()
	k := len(vars)
	if k == 0 {
		k = 1
	}
	varIndex := make(map[condition.Variable]int, len(vars))
	for i, x := range vars {
		varIndex[x] = i
	}

	n := t.arity
	var branches []ra.Query
	for _, row := range t.rows {
		// Columns 1..n of the product: the attribute terms.
		factors := make([]ra.Query, 0, n+k)
		colOfVar := make(map[condition.Variable]int) // variable -> 0-based product column
		for i, term := range row.Terms {
			if term.IsVar {
				j, ok := varIndex[term.Var]
				if !ok {
					return nil, 0, fmt.Errorf("ctable: unknown variable %s", term.Var)
				}
				factors = append(factors, ra.Project([]int{j}, ra.Rel("V")))
				if _, seen := colOfVar[term.Var]; !seen {
					colOfVar[term.Var] = i
				}
			} else {
				factors = append(factors, ra.Constant(relation.Singleton(value.NewTuple(term.Const))))
			}
		}
		// Extra columns n+1.. for condition variables not already provided by
		// a tuple position.
		for _, x := range condition.Vars(row.Cond) {
			if _, ok := colOfVar[x]; ok {
				continue
			}
			j, ok := varIndex[x]
			if !ok {
				return nil, 0, fmt.Errorf("ctable: unknown variable %s", x)
			}
			colOfVar[x] = len(factors)
			factors = append(factors, ra.Project([]int{j}, ra.Rel("V")))
		}
		pred, err := conditionToPredicate(row.Cond, colOfVar)
		if err != nil {
			return nil, 0, err
		}
		cols := make([]int, n)
		for i := range cols {
			cols[i] = i
		}
		branches = append(branches, ra.Project(cols, ra.Select(pred, ra.CrossAll(factors...))))
	}
	if len(branches) == 0 {
		// The empty c-table represents {∅}; an always-empty SPJU query of the
		// right arity does the job.
		factors := make([]ra.Query, n)
		for i := range factors {
			factors[i] = ra.Project([]int{0}, ra.Rel("V"))
		}
		cols := make([]int, n)
		for i := range cols {
			cols[i] = i
		}
		return ra.Project(cols, ra.Select(ra.False(), ra.CrossAll(factors...))), k, nil
	}
	return ra.UnionAll(branches...), k, nil
}

// conditionToPredicate translates a c-table condition into a selection
// predicate over the product columns, replacing each variable by the column
// it is bound to (the ψ_t of the paper's proof).
func conditionToPredicate(c condition.Condition, colOfVar map[condition.Variable]int) (ra.Predicate, error) {
	switch c := c.(type) {
	case condition.TrueCond:
		return ra.True(), nil
	case condition.FalseCond:
		return ra.False(), nil
	case condition.Cmp:
		l, err := condTermToRATerm(c.Left, colOfVar)
		if err != nil {
			return nil, err
		}
		r, err := condTermToRATerm(c.Right, colOfVar)
		if err != nil {
			return nil, err
		}
		if c.Neq {
			return ra.Ne(l, r), nil
		}
		return ra.Eq(l, r), nil
	case condition.AndCond:
		preds := make([]ra.Predicate, 0, len(c.Conds))
		for _, sub := range c.Conds {
			p, err := conditionToPredicate(sub, colOfVar)
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		}
		return ra.AndOf(preds...), nil
	case condition.OrCond:
		preds := make([]ra.Predicate, 0, len(c.Conds))
		for _, sub := range c.Conds {
			p, err := conditionToPredicate(sub, colOfVar)
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		}
		return ra.OrOf(preds...), nil
	case condition.NotCond:
		p, err := conditionToPredicate(c.Cond, colOfVar)
		if err != nil {
			return nil, err
		}
		return ra.NotOf(p), nil
	default:
		return nil, fmt.Errorf("ctable: unsupported condition %T", c)
	}
}

func condTermToRATerm(t condition.Term, colOfVar map[condition.Variable]int) (ra.Term, error) {
	if !t.IsVar {
		return ra.Const(t.Const), nil
	}
	col, ok := colOfVar[t.Var]
	if !ok {
		return ra.Term{}, fmt.Errorf("ctable: variable %s has no column binding", t.Var)
	}
	return ra.Col(col), nil
}

// Proposition4Query returns the RA query q of Proposition 4 such that
// q(N) = Z_n: applied to any single instance V of arity n it returns V when
// |V| = 1 and the fixed singleton {t} otherwise, so that the image of the
// set of all instances is exactly the set of all one-tuple instances.
// The tuple t is (0, 0, ..., 0).
func Proposition4Query(n int) ra.Query {
	if n <= 0 {
		panic("ctable: Proposition4Query needs n >= 1")
	}
	v := ra.Rel("V")
	// q'(V) := V − π_ℓ(σ_{ℓ≠r}(V × V)) — V if |V| ≤ 1, ∅ otherwise.
	left := make([]int, n)
	neqs := make([]ra.Predicate, n)
	for i := 0; i < n; i++ {
		left[i] = i
		neqs[i] = ra.Ne(ra.Col(i), ra.Col(n+i))
	}
	qPrime := ra.Diff(v, ra.Project(left, ra.Select(ra.OrOf(neqs...), ra.Cross(v, v))))
	// q(V) := q'(V) ∪ ({t} − π_ℓ({t} × q'(V))).
	t := relation.Singleton(value.Ints(make([]int64, n)...))
	tQ := ra.Constant(t)
	return ra.Union(qPrime, ra.Diff(tQ, ra.Project(left, ra.Cross(tQ, qPrime))))
}

// BooleanCTableFromIDatabase implements the proof of Theorem 3: it returns
// a boolean c-table T (variables x1..xℓ ranging over {false,true}, occurring
// only in conditions) with Mod(T) equal to the given finite incomplete
// database. It returns an error when the database has no instances at all,
// since Mod of a c-table is never empty.
func BooleanCTableFromIDatabase(db *incomplete.IDatabase) (*CTable, error) {
	instances := db.Instances()
	m := len(instances)
	if m == 0 {
		return nil, fmt.Errorf("ctable: the empty incomplete database is not representable by a c-table")
	}
	t := New(db.Arity())
	// ℓ = ⌈lg m⌉ boolean variables.
	ell := 0
	if m > 1 {
		ell = bits.Len(uint(m - 1))
	}
	boolDom := value.BoolDomain()
	for i := 1; i <= ell; i++ {
		t.SetDomain(boolVarName(i), boolDom)
	}
	// φ_i selects the valuation whose bits spell i−1 (1-indexed instances).
	phi := func(i int) condition.Condition {
		conds := make([]condition.Condition, 0, ell)
		for j := 1; j <= ell; j++ {
			bit := (i - 1) >> (j - 1) & 1
			if bit == 1 {
				conds = append(conds, condition.IsTrueVar(boolVarName(j)))
			} else {
				conds = append(conds, condition.IsFalseVar(boolVarName(j)))
			}
		}
		return condition.And(conds...)
	}
	for i := 1; i < m; i++ {
		for _, tuple := range instances[i-1].Tuples() {
			t.AddConstRow(tuple, phi(i))
		}
	}
	// Last instance: condition φ_m ∨ ... ∨ φ_{2^ℓ} (all remaining patterns).
	var rest []condition.Condition
	for i := m; i <= 1<<ell; i++ {
		rest = append(rest, phi(i))
	}
	lastCond := condition.Or(rest...)
	if ell == 0 {
		lastCond = condition.True()
	}
	for _, tuple := range instances[m-1].Tuples() {
		t.AddConstRow(tuple, lastCond)
	}
	return t, nil
}

func boolVarName(i int) string { return fmt.Sprintf("x%d", i) }

// ExpandToBooleanCTable converts any finite-domain c-table into an
// equivalent boolean c-table by enumerating Mod and applying Theorem 3.
// This is the (exponential) naïve translation whose blowup Example 5
// quantifies; the succinctness benchmark E6 uses it.
func ExpandToBooleanCTable(t *CTable) (*CTable, error) {
	db, err := t.Mod()
	if err != nil {
		return nil, err
	}
	return BooleanCTableFromIDatabase(db)
}
