package parser

import (
	"fmt"
	"strconv"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/ra"
)

// ParseCondition parses a c-table condition such as
//
//	x = y && z != 2 || !(t = true)
//
// Operator precedence: ! binds tightest, then &&, then ||. The unicode
// forms ∧, ∨, ¬ and ≠ are accepted as well.
func ParseCondition(s string) (condition.Condition, error) {
	lx, err := lex(s)
	if err != nil {
		return nil, err
	}
	c, err := parseCondOr(lx)
	if err != nil {
		return nil, err
	}
	if lx.peek().kind != tokEOF {
		return nil, fmt.Errorf("parser: trailing input %q in condition", lx.peek().text)
	}
	return c, nil
}

func parseCondOr(lx *lexer) (condition.Condition, error) {
	left, err := parseCondAnd(lx)
	if err != nil {
		return nil, err
	}
	parts := []condition.Condition{left}
	for lx.acceptSymbol("||") {
		right, err := parseCondAnd(lx)
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return condition.Or(parts...), nil
}

func parseCondAnd(lx *lexer) (condition.Condition, error) {
	left, err := parseCondUnary(lx)
	if err != nil {
		return nil, err
	}
	parts := []condition.Condition{left}
	for lx.acceptSymbol("&&") {
		right, err := parseCondUnary(lx)
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return condition.And(parts...), nil
}

func parseCondUnary(lx *lexer) (condition.Condition, error) {
	if lx.acceptSymbol("!") || lx.acceptSymbol("¬") {
		inner, err := parseCondUnary(lx)
		if err != nil {
			return nil, err
		}
		return condition.Not(inner), nil
	}
	if lx.acceptSymbol("(") {
		inner, err := parseCondOr(lx)
		if err != nil {
			return nil, err
		}
		if err := lx.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return parseCondAtom(lx)
}

func parseCondAtom(lx *lexer) (condition.Condition, error) {
	t := lx.next()
	// Boolean constants "true"/"false" standing alone.
	if t.kind == tokIdent && (t.text == "true" || t.text == "false") {
		// Could be a bare constant or the left side of a comparison against a
		// variable; a bare constant is only valid if no comparison follows.
		if lx.peek().kind == tokSymbol && (lx.peek().text == "=" || lx.peek().text == "!=" || lx.peek().text == "≠") {
			return parseComparisonFrom(lx, t)
		}
		if t.text == "true" {
			return condition.True(), nil
		}
		return condition.False(), nil
	}
	return parseComparisonFrom(lx, t)
}

func parseComparisonFrom(lx *lexer, first token) (condition.Condition, error) {
	left, err := condTermFromToken(first)
	if err != nil {
		return nil, err
	}
	op := lx.next()
	if op.kind != tokSymbol || (op.text != "=" && op.text != "!=" && op.text != "≠") {
		return nil, fmt.Errorf("parser: expected = or != in condition, got %q", op.text)
	}
	right, err := condTermFromToken(lx.next())
	if err != nil {
		return nil, err
	}
	if op.text == "=" {
		return condition.Eq(left, right), nil
	}
	return condition.Neq(left, right), nil
}

func condTermFromToken(t token) (condition.Term, error) {
	if v, ok := parseValue(t); ok {
		return condition.Const(v), nil
	}
	if t.kind == tokIdent {
		return condition.Var(t.text), nil
	}
	return condition.Term{}, fmt.Errorf("parser: unexpected token %q in condition", t.text)
}

// ParseQuery parses a relational algebra expression. Grammar (case
// insensitive keywords):
//
//	query   := term { ("union" | "minus" | "intersect") term }
//	term    := factor { ("x" | "join" "[" pred "]") factor }
//	factor  := name
//	         | "select" "[" pred "]" "(" query ")"
//	         | "project" "[" cols "]" "(" query ")"
//	         | "(" query ")"
//	pred    := boolean combination of "$i op ($j | literal)" with &&, ||, !
//	cols    := 1-based column indexes separated by commas
func ParseQuery(s string) (ra.Query, error) {
	lx, err := lex(s)
	if err != nil {
		return nil, err
	}
	q, err := parseQueryUnion(lx)
	if err != nil {
		return nil, err
	}
	if lx.peek().kind != tokEOF {
		return nil, fmt.Errorf("parser: trailing input %q in query", lx.peek().text)
	}
	return q, nil
}

func parseQueryUnion(lx *lexer) (ra.Query, error) {
	left, err := parseQueryJoin(lx)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case lx.acceptIdent("union"):
			right, err := parseQueryJoin(lx)
			if err != nil {
				return nil, err
			}
			left = ra.Union(left, right)
		case lx.acceptIdent("minus"):
			right, err := parseQueryJoin(lx)
			if err != nil {
				return nil, err
			}
			left = ra.Diff(left, right)
		case lx.acceptIdent("intersect"):
			right, err := parseQueryJoin(lx)
			if err != nil {
				return nil, err
			}
			left = ra.Intersect(left, right)
		default:
			return left, nil
		}
	}
}

func parseQueryJoin(lx *lexer) (ra.Query, error) {
	left, err := parseQueryFactor(lx)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case lx.peek().kind == tokIdent && lx.peek().text == "x":
			lx.next()
			right, err := parseQueryFactor(lx)
			if err != nil {
				return nil, err
			}
			left = ra.Cross(left, right)
		case lx.acceptIdent("join"):
			if err := lx.expectSymbol("["); err != nil {
				return nil, err
			}
			pred, err := parsePredOr(lx)
			if err != nil {
				return nil, err
			}
			if err := lx.expectSymbol("]"); err != nil {
				return nil, err
			}
			right, err := parseQueryFactor(lx)
			if err != nil {
				return nil, err
			}
			left = ra.Join(left, right, pred)
		default:
			return left, nil
		}
	}
}

func parseQueryFactor(lx *lexer) (ra.Query, error) {
	t := lx.peek()
	switch {
	case t.kind == tokSymbol && t.text == "(":
		lx.next()
		q, err := parseQueryUnion(lx)
		if err != nil {
			return nil, err
		}
		if err := lx.expectSymbol(")"); err != nil {
			return nil, err
		}
		return q, nil
	case t.kind == tokIdent && (t.text == "select" || t.text == "project"):
		lx.next()
		if err := lx.expectSymbol("["); err != nil {
			return nil, err
		}
		if t.text == "select" {
			pred, err := parsePredOr(lx)
			if err != nil {
				return nil, err
			}
			if err := lx.expectSymbol("]"); err != nil {
				return nil, err
			}
			if err := lx.expectSymbol("("); err != nil {
				return nil, err
			}
			inner, err := parseQueryUnion(lx)
			if err != nil {
				return nil, err
			}
			if err := lx.expectSymbol(")"); err != nil {
				return nil, err
			}
			return ra.Select(pred, inner), nil
		}
		cols, err := parseCols(lx)
		if err != nil {
			return nil, err
		}
		if err := lx.expectSymbol("]"); err != nil {
			return nil, err
		}
		if err := lx.expectSymbol("("); err != nil {
			return nil, err
		}
		inner, err := parseQueryUnion(lx)
		if err != nil {
			return nil, err
		}
		if err := lx.expectSymbol(")"); err != nil {
			return nil, err
		}
		return ra.Project(cols, inner), nil
	case t.kind == tokIdent:
		lx.next()
		return ra.Rel(t.text), nil
	default:
		return nil, fmt.Errorf("parser: unexpected token %q in query", t.text)
	}
}

func parseCols(lx *lexer) ([]int, error) {
	var cols []int
	for {
		t := lx.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("parser: expected column index, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("parser: bad column index %q", t.text)
		}
		cols = append(cols, n-1)
		if lx.acceptSymbol(",") {
			continue
		}
		return cols, nil
	}
}

func parsePredOr(lx *lexer) (ra.Predicate, error) {
	left, err := parsePredAnd(lx)
	if err != nil {
		return nil, err
	}
	parts := []ra.Predicate{left}
	for lx.acceptSymbol("||") {
		right, err := parsePredAnd(lx)
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return ra.OrOf(parts...), nil
}

func parsePredAnd(lx *lexer) (ra.Predicate, error) {
	left, err := parsePredUnary(lx)
	if err != nil {
		return nil, err
	}
	parts := []ra.Predicate{left}
	for lx.acceptSymbol("&&") {
		right, err := parsePredUnary(lx)
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return ra.AndOf(parts...), nil
}

func parsePredUnary(lx *lexer) (ra.Predicate, error) {
	if lx.acceptSymbol("!") || lx.acceptSymbol("¬") {
		inner, err := parsePredUnary(lx)
		if err != nil {
			return nil, err
		}
		return ra.NotOf(inner), nil
	}
	if lx.acceptSymbol("(") {
		inner, err := parsePredOr(lx)
		if err != nil {
			return nil, err
		}
		if err := lx.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return parsePredAtom(lx)
}

func parsePredAtom(lx *lexer) (ra.Predicate, error) {
	left, err := parsePredTerm(lx)
	if err != nil {
		return nil, err
	}
	opTok := lx.next()
	var op ra.CmpOp
	switch opTok.text {
	case "=":
		op = ra.OpEq
	case "!=", "≠":
		op = ra.OpNe
	case "<":
		op = ra.OpLt
	case "<=":
		op = ra.OpLe
	case ">":
		op = ra.OpGt
	case ">=":
		op = ra.OpGe
	default:
		return nil, fmt.Errorf("parser: expected comparison operator, got %q", opTok.text)
	}
	right, err := parsePredTerm(lx)
	if err != nil {
		return nil, err
	}
	return ra.Compare(left, op, right), nil
}

func parsePredTerm(lx *lexer) (ra.Term, error) {
	if lx.acceptSymbol("$") {
		t := lx.next()
		if t.kind != tokNumber {
			return ra.Term{}, fmt.Errorf("parser: expected column number after $, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return ra.Term{}, fmt.Errorf("parser: bad column reference $%s", t.text)
		}
		return ra.Col(n - 1), nil
	}
	t := lx.next()
	if v, ok := parseValue(t); ok {
		return ra.Const(v), nil
	}
	return ra.Term{}, fmt.Errorf("parser: unexpected token %q in predicate", t.text)
}
