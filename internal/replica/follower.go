package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uncertaindb/internal/engine"
	"uncertaindb/internal/obs"
)

// FollowerOptions tunes a Follower. The zero value is a sensible default.
type FollowerOptions struct {
	// PollWait is the long-poll window of each /v1/changes request (the
	// leader caps it server-side). Zero selects 3s.
	PollWait time.Duration
	// PageLimit bounds one changes page. Zero selects 512.
	PageLimit int
	// BackoffBase and BackoffMax bound the jittered exponential backoff
	// applied after a failed leader RPC. Zeros select 100ms and 10s.
	BackoffBase, BackoffMax time.Duration
	// Obs, when set, registers replication metrics (applied/leader version
	// gauges, lag histogram, resync and backoff counters) in its registry.
	Obs *obs.Observer
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.PollWait <= 0 {
		o.PollWait = 3 * time.Second
	}
	if o.PageLimit <= 0 {
		o.PageLimit = 512
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 10 * time.Second
	}
	return o
}

// Status is a point-in-time view of a follower's replication state.
type Status struct {
	// Leader is the leader's base URL.
	Leader string `json:"leader"`
	// AppliedVersion is the catalog version this follower has applied.
	AppliedVersion uint64 `json:"appliedVersion"`
	// LeaderVersion is the leader catalog version last observed (0 before
	// the first successful poll).
	LeaderVersion uint64 `json:"leaderVersion"`
	// Resyncs counts snapshot re-bootstraps (initial bootstrap included).
	Resyncs uint64 `json:"resyncs"`
	// Backoffs counts leader RPC failures that triggered a backoff sleep.
	Backoffs uint64 `json:"backoffs"`
	// LastError is the most recent leader RPC failure ("" after a success).
	LastError string `json:"lastError,omitempty"`
}

// Follower replicates a leader's catalog into a local engine: one snapshot
// bootstrap, then an apply loop tailing the change feed. Mutations flow
// through engine.ApplyChange, so per-entry versions — and plan-cache keys —
// are exactly the leader's, and the local change feed re-publishes every
// applied record (a follower can itself be followed). Safe for concurrent
// use; queries against the engine proceed snapshot-isolated while records
// apply.
type Follower struct {
	eng    *engine.Engine
	client *Client
	opts   FollowerOptions

	applied   atomic.Uint64
	leaderVer atomic.Uint64
	resyncs   atomic.Uint64
	backoffs  atomic.Uint64
	lastErr   atomic.Value // string

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once

	// Metrics (nil-safe no-ops without Obs).
	appliedGauge *obs.Gauge
	leaderGauge  *obs.Gauge
	behindGauge  *obs.Gauge
	lagSeconds   *obs.Histogram
	applyTotal   *obs.Counter
	resyncTotal  *obs.Counter
	backoffTotal *obs.Counter
}

// NewFollower builds a follower applying the client's leader into eng.
// Call Bootstrap (or let Run do it), then Start.
func NewFollower(eng *engine.Engine, client *Client, opts FollowerOptions) *Follower {
	f := &Follower{eng: eng, client: client, opts: opts.withDefaults()}
	f.lastErr.Store("")
	if ob := f.opts.Obs; ob != nil {
		f.appliedGauge = ob.Reg.Gauge("uncertaindb_replication_applied_version", "",
			"Catalog version this follower has applied.")
		f.leaderGauge = ob.Reg.Gauge("uncertaindb_replication_leader_version", "",
			"Leader catalog version last observed by this follower.")
		f.behindGauge = ob.Reg.Gauge("uncertaindb_replication_versions_behind", "",
			"Leader catalog version minus applied version at the last poll.")
		f.lagSeconds = ob.Reg.Histogram("uncertaindb_replication_lag_seconds", "",
			"Commit-to-apply lag of replicated changes (leader commit wall clock to follower apply).", nil)
		f.applyTotal = ob.Reg.Counter("uncertaindb_replication_applied_changes_total", "",
			"Change-feed records applied by this follower.")
		f.resyncTotal = ob.Reg.Counter("uncertaindb_replication_resyncs_total", "",
			"Snapshot re-bootstraps (initial bootstrap included).")
		f.backoffTotal = ob.Reg.Counter("uncertaindb_replication_backoffs_total", "",
			"Leader RPC failures that triggered a backoff sleep.")
	}
	return f
}

// Leader returns the leader's base URL.
func (f *Follower) Leader() string { return f.client.Base() }

// AppliedVersion returns the catalog version the follower has applied.
func (f *Follower) AppliedVersion() uint64 { return f.applied.Load() }

// Status returns the follower's replication state.
func (f *Follower) Status() Status {
	return Status{
		Leader:         f.client.Base(),
		AppliedVersion: f.applied.Load(),
		LeaderVersion:  f.leaderVer.Load(),
		Resyncs:        f.resyncs.Load(),
		Backoffs:       f.backoffs.Load(),
		LastError:      f.lastErr.Load().(string),
	}
}

// Bootstrap fetches the leader's snapshot and resets the engine's catalog to
// it — the initial sync, and the recovery path after the leader compacts
// history out from under a lagging follower. The engine's plan cache is
// purged wholesale; per-entry versions come over byte-identical, so plans
// recompiled afterwards carry the leader's cache keys.
func (f *Follower) Bootstrap(ctx context.Context) error {
	st, err := f.client.Snapshot(ctx)
	if err != nil {
		return err
	}
	f.eng.ResetCatalog(st)
	f.applied.Store(st.Version)
	f.appliedGauge.Set(int64(st.Version))
	if lv := f.leaderVer.Load(); lv > st.Version {
		f.behindGauge.Set(int64(lv - st.Version))
	} else {
		f.leaderVer.Store(st.Version)
		f.leaderGauge.Set(int64(st.Version))
		f.behindGauge.Set(0)
	}
	f.resyncs.Add(1)
	f.resyncTotal.Inc()
	return nil
}

// Start launches the apply loop in a goroutine; Close stops it.
func (f *Follower) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go func() {
		defer close(f.done)
		f.Run(ctx)
	}()
}

// Close stops the apply loop and waits for it to exit. Idempotent; the
// engine stays queryable at the last applied version.
func (f *Follower) Close() {
	f.once.Do(func() {
		if f.cancel != nil {
			f.cancel()
			<-f.done
		}
	})
}

// Run drives the replication loop until ctx is cancelled: long-poll the
// change feed from the applied version, apply every record, re-bootstrap
// from a snapshot on compacted history (ErrCompacted — the leader's 410),
// and back off with jitter on any other failure. A version gap in the feed
// (possible only across a leader that lost and rebuilt history) is treated
// like compaction: resync from snapshot rather than apply out of order.
func (f *Follower) Run(ctx context.Context) {
	bo := newBackoff(f.opts.BackoffBase, f.opts.BackoffMax, time.Now().UnixNano())
	for ctx.Err() == nil {
		if err := f.step(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			f.lastErr.Store(err.Error())
			f.backoffs.Add(1)
			f.backoffTotal.Inc()
			select {
			case <-time.After(bo.next()):
			case <-ctx.Done():
				return
			}
			continue
		}
		f.lastErr.Store("")
		bo.reset()
	}
}

// step performs one replication round: ensure bootstrapped, poll once, apply
// the page. It returns nil on an empty page (the long-poll simply elapsed).
func (f *Follower) step(ctx context.Context) error {
	if f.resyncs.Load() == 0 {
		if err := f.Bootstrap(ctx); err != nil {
			return err
		}
	}
	from := f.applied.Load()
	page, err := f.client.Changes(ctx, from, f.opts.PageLimit, f.opts.PollWait)
	if errors.Is(err, ErrCompacted) {
		// The leader compacted our cursor away; degrade gracefully to a
		// fresh snapshot instead of failing hard.
		return f.Bootstrap(ctx)
	}
	if err != nil {
		return err
	}
	f.leaderVer.Store(page.CatalogVersion)
	f.leaderGauge.Set(int64(page.CatalogVersion))
	for i := range page.Changes {
		ch := &page.Changes[i]
		rec, err := ch.Record()
		if err != nil {
			return err
		}
		if rec.Version != f.applied.Load()+1 {
			return f.Bootstrap(ctx)
		}
		if err := f.eng.ApplyChange(rec); err != nil {
			return fmt.Errorf("replica: applying v%d: %w", rec.Version, err)
		}
		f.applied.Store(rec.Version)
		f.appliedGauge.Set(int64(rec.Version))
		f.applyTotal.Inc()
		if ch.CommittedUnixNano > 0 {
			if lag := time.Since(time.Unix(0, ch.CommittedUnixNano)); lag > 0 {
				f.lagSeconds.Observe(lag)
			}
		}
	}
	applied := f.applied.Load()
	if lv := f.leaderVer.Load(); lv >= applied {
		f.behindGauge.Set(int64(lv - applied))
	}
	return nil
}
