// Package incomplete defines incomplete databases (Definition 1 of the
// paper): sets of conventional instances ("possible worlds"), together with
// the notion of a representation system (Definition 2), queries applied to
// incomplete databases, and the classical certain/possible answer
// semantics.
//
// An incomplete database over an infinite domain may be infinite; this
// package represents the *finite* incomplete databases explicitly (they are
// what the finite-completeness results of the paper are about), and the
// ctable package layers lazy/symbolic treatments of infinite Mod(T) on top.
package incomplete

import (
	"sort"

	"uncertaindb/internal/ra"
	"uncertaindb/internal/relation"
)

// IDatabase is a finite incomplete database: a finite set of instances of a
// fixed arity. The zero value is not usable; use New.
type IDatabase struct {
	arity     int
	instances map[string]*relation.Relation
}

// New returns an empty incomplete database of the given arity.
// Note that the empty set of instances is a legitimate (if degenerate)
// incomplete database, distinct from {∅} which contains the empty instance.
func New(arity int) *IDatabase {
	return &IDatabase{arity: arity, instances: make(map[string]*relation.Relation)}
}

// FromInstances builds an incomplete database containing the given
// instances, which must all share the given arity.
func FromInstances(arity int, instances ...*relation.Relation) *IDatabase {
	db := New(arity)
	for _, inst := range instances {
		db.Add(inst)
	}
	return db
}

// Arity returns the arity of the instances of db.
func (db *IDatabase) Arity() int { return arity(db) }

func arity(db *IDatabase) int { return db.arity }

// Size returns the number of distinct instances in db.
func (db *IDatabase) Size() int { return len(db.instances) }

// Add inserts an instance (set semantics). It panics on arity mismatch.
func (db *IDatabase) Add(inst *relation.Relation) {
	if inst.Arity() != db.arity {
		panic("incomplete: instance arity mismatch")
	}
	db.instances[inst.Key()] = inst.Copy()
}

// Contains reports whether inst is one of the possible worlds of db.
func (db *IDatabase) Contains(inst *relation.Relation) bool {
	if inst.Arity() != db.arity {
		return false
	}
	_, ok := db.instances[inst.Key()]
	return ok
}

// Instances returns the possible worlds in a canonical (sorted-key) order.
func (db *IDatabase) Instances() []*relation.Relation {
	keys := make([]string, 0, len(db.instances))
	for k := range db.instances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*relation.Relation, len(keys))
	for i, k := range keys {
		out[i] = db.instances[k]
	}
	return out
}

// Equal reports whether db and other contain exactly the same instances.
func (db *IDatabase) Equal(other *IDatabase) bool {
	if db.arity != other.arity || len(db.instances) != len(other.instances) {
		return false
	}
	for k := range db.instances {
		if _, ok := other.instances[k]; !ok {
			return false
		}
	}
	return true
}

// Copy returns an independent copy of db.
func (db *IDatabase) Copy() *IDatabase {
	c := New(db.arity)
	for _, inst := range db.instances {
		c.Add(inst)
	}
	return c
}

// MaxCardinality returns the size of the largest instance in db (0 when db
// is empty). c-tables can only represent incomplete databases whose
// instances have cardinality at most the number of rows of the table
// (Section 3 of the paper), so this is a useful bound.
func (db *IDatabase) MaxCardinality() int {
	max := 0
	for _, inst := range db.instances {
		if inst.Size() > max {
			max = inst.Size()
		}
	}
	return max
}

// Map applies a query with one input relation to every possible world and
// returns the resulting incomplete database q(I) = {q(I) | I ∈ I}.
// The query's arity under the input arity of db determines the output
// arity; Map returns an error if the query is ill-formed.
func Map(q ra.Query, db *IDatabase) (*IDatabase, error) {
	arities := ra.ArityEnv{inputNameFor(q): db.arity}
	for name := range ra.InputNames(q) {
		arities[name] = db.arity
	}
	outArity, err := ra.Arity(q, arities)
	if err != nil {
		return nil, err
	}
	out := New(outArity)
	for _, inst := range db.instances {
		res, err := ra.EvalSingle(q, inst)
		if err != nil {
			return nil, err
		}
		out.Add(res)
	}
	return out, nil
}

// MustMap is Map that panics on error.
func MustMap(q ra.Query, db *IDatabase) *IDatabase {
	out, err := Map(q, db)
	if err != nil {
		panic(err)
	}
	return out
}

// inputNameFor returns some input relation name of q (queries in this
// library follow the paper's single-input convention); when the query
// references no input at all, a dummy name is returned.
func inputNameFor(q ra.Query) string {
	for name := range ra.InputNames(q) {
		return name
	}
	return "V"
}

// CertainAnswers returns the tuples present in q(I) for every possible
// world I of db: the classical certain-answer semantics. When db is empty
// the result is the empty relation of the query's output arity.
func CertainAnswers(q ra.Query, db *IDatabase) (*relation.Relation, error) {
	mapped, err := Map(q, db)
	if err != nil {
		return nil, err
	}
	insts := mapped.Instances()
	if len(insts) == 0 {
		return relation.New(mapped.arity), nil
	}
	out := insts[0].Copy()
	for _, inst := range insts[1:] {
		out = relation.Intersection(out, inst)
	}
	return out, nil
}

// PossibleAnswers returns the tuples present in q(I) for at least one
// possible world I of db.
func PossibleAnswers(q ra.Query, db *IDatabase) (*relation.Relation, error) {
	mapped, err := Map(q, db)
	if err != nil {
		return nil, err
	}
	out := relation.New(mapped.arity)
	for _, inst := range mapped.Instances() {
		out = relation.Union(out, inst)
	}
	return out, nil
}

// Representation is the interface implemented by every finite
// representation system table in this library (Definition 2): a table T
// together with the incomplete database Mod(T) it denotes.
type Representation interface {
	// Arity returns the arity of the represented instances.
	Arity() int
	// Mod returns the represented (finite) incomplete database.
	Mod() *IDatabase
}
