// Package relation implements conventional relational instances: finite
// n-ary relations over the value domain D (the set N of the paper, whose
// elements are the "possible worlds" of an incomplete database).
//
// The paper uses the unnamed perspective of the relational algebra, so a
// Relation is essentially a set of value.Tuple of a fixed arity; attribute
// names are carried only as optional presentation metadata.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"uncertaindb/internal/value"
)

// Relation is a finite set of tuples of a fixed arity. The zero Relation is
// not usable; construct relations with New or NewFromTuples.
type Relation struct {
	arity  int
	names  []string // optional column names, len == arity when set
	tuples map[string]value.Tuple
}

// New returns an empty relation of the given arity.
func New(arity int) *Relation {
	if arity < 0 {
		panic("relation: negative arity")
	}
	return &Relation{arity: arity, tuples: make(map[string]value.Tuple)}
}

// NewFromTuples returns a relation of the given arity containing the given
// tuples. It panics if a tuple has the wrong arity.
func NewFromTuples(arity int, tuples ...value.Tuple) *Relation {
	r := New(arity)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// FromInts builds a relation out of rows of integer literals; a convenience
// mirroring the integer tables in the paper's examples.
func FromInts(rows ...[]int64) *Relation {
	if len(rows) == 0 {
		panic("relation: FromInts needs at least one row to determine arity")
	}
	r := New(len(rows[0]))
	for _, row := range rows {
		r.Add(value.Ints(row...))
	}
	return r
}

// WithNames attaches presentation column names to r and returns r.
// It panics if the number of names does not match the arity.
func (r *Relation) WithNames(names ...string) *Relation {
	if len(names) != r.arity {
		panic(fmt.Sprintf("relation: %d names for arity %d", len(names), r.arity))
	}
	r.names = append([]string(nil), names...)
	return r
}

// Names returns the presentation column names, or nil if none were set.
func (r *Relation) Names() []string { return r.names }

// Arity returns the arity of r.
func (r *Relation) Arity() int { return r.arity }

// Size returns the number of tuples in r.
func (r *Relation) Size() int { return len(r.tuples) }

// IsEmpty reports whether r contains no tuples.
func (r *Relation) IsEmpty() bool { return len(r.tuples) == 0 }

// Add inserts t into r (set semantics: duplicates are absorbed).
// It panics if t has the wrong arity.
func (r *Relation) Add(t value.Tuple) {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: tuple arity %d, relation arity %d", len(t), r.arity))
	}
	r.tuples[t.Key()] = t.Copy()
}

// Remove deletes t from r if present.
func (r *Relation) Remove(t value.Tuple) { delete(r.tuples, t.Key()) }

// Contains reports whether t is a member of r.
func (r *Relation) Contains(t value.Tuple) bool {
	_, ok := r.tuples[t.Key()]
	return ok
}

// Tuples returns the tuples of r in canonical (sorted) order.
func (r *Relation) Tuples() []value.Tuple {
	out := make([]value.Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Copy returns an independent copy of r (names included).
func (r *Relation) Copy() *Relation {
	c := New(r.arity)
	if r.names != nil {
		c.names = append([]string(nil), r.names...)
	}
	for k, t := range r.tuples {
		c.tuples[k] = t.Copy()
	}
	return c
}

// Equal reports whether r and s contain exactly the same tuples (names are
// ignored: they are presentation metadata only).
func (r *Relation) Equal(s *Relation) bool {
	if r.arity != s.arity || len(r.tuples) != len(s.tuples) {
		return false
	}
	for k := range r.tuples {
		if _, ok := s.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of r's contents, injective on
// relations of the same arity. It is used to deduplicate possible worlds.
func (r *Relation) Key() string {
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("%d;%s", r.arity, strings.Join(keys, "#"))
}

// String renders r as a set of tuples in canonical order.
func (r *Relation) String() string {
	ts := r.Tuples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ActiveDomain returns the set of values appearing anywhere in r.
func (r *Relation) ActiveDomain() *value.Domain {
	var vs []value.Value
	for _, t := range r.tuples {
		vs = append(vs, t...)
	}
	return value.NewDomain(vs...)
}
