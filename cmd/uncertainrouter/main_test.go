package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"uncertaindb/internal/httpapi"
	"uncertaindb/pkg/uncertain"
)

const takesScript = `table Takes arity 2
row 'Alice', x
row 'Bob', 'physics'
dist x = {'math': 0.3, 'physics': 0.5, 'art': 0.2}
`

// syncWriter lets the test read run()'s output while the router goroutine
// is still writing to it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRe = regexp.MustCompile(`listening on (http://[^\s]+)`)

// The full router lifecycle against a live in-process leader and follower:
// announce the listen address, fan a query out to the replica with routing
// stamps, serve the router's own status and metrics, shut down gracefully.
func TestRunLifecycle(t *testing.T) {
	leaderDB, err := uncertain.Open(uncertain.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leaderDB.Close() })
	leaderSrv := httptest.NewServer(httpapi.New(leaderDB))
	t.Cleanup(leaderSrv.Close)

	fDB, err := uncertain.Open(uncertain.Config{Follow: leaderSrv.URL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fDB.Close() })
	fSrv := httptest.NewServer(httpapi.New(fDB))
	t.Cleanup(fSrv.Close)

	_, v, err := leaderDB.PutTableScript(takesScript)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for fDB.CatalogVersion() != v {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at version %d, want %d", fDB.CatalogVersion(), v)
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-leader", leaderSrv.URL,
			"-replica", fSrv.URL,
			"-health-interval", "10ms",
		}, out)
	}()

	var base string
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("router never announced its address; output so far:\n%s", out.String())
		}
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Queries fan out to the replica with routing stamps. The health loop
	// may not have admitted the replica yet, in which case the leader serves
	// the first few — wait for a replica-served answer.
	var resp *http.Response
	for {
		resp, err = http.Post(base+"/v1/query", "application/json",
			strings.NewReader(`{"query": "project[1](Takes)"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed query: status %d", resp.StatusCode)
		}
		if resp.Header.Get("X-Served-By") == fSrv.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never served from the replica (last X-Served-By %q)", resp.Header.Get("X-Served-By"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := resp.Header.Get("X-Catalog-Version"); got != "1" {
		t.Fatalf("X-Catalog-Version %q, want 1", got)
	}

	// The status endpoint reports the backend; /metrics serves the router's
	// own registry (default -no-obs=false).
	stResp, err := http.Get(base + "/v1/router")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Leader string `json:"leader"`
	}
	if err := json.NewDecoder(stResp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if status.Leader != leaderSrv.URL {
		t.Fatalf("/v1/router leader %q, want %q", status.Leader, leaderSrv.URL)
	}
	mResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	if mResp.StatusCode != http.StatusOK || !strings.Contains(string(metrics), "uncertaindb_router_route_duration_seconds") {
		t.Fatalf("GET /metrics: %d\n%s", mResp.StatusCode, metrics)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("router did not shut down within 5s")
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Errorf("missing shutdown line in output:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	if err := run(ctx, []string{"-badflag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(ctx, []string{"-replica", "http://127.0.0.1:1"}, &buf); err == nil || !strings.Contains(err.Error(), "-leader") {
		t.Errorf("missing -leader: err %v", err)
	}
	if err := run(ctx, []string{"-leader", "http://127.0.0.1:1"}, &buf); err == nil || !strings.Contains(err.Error(), "-replica") {
		t.Errorf("missing -replica: err %v", err)
	}
	if err := run(ctx, []string{"-h"}, &buf); err != nil {
		t.Errorf("-h: %v", err)
	}
	if !strings.Contains(buf.String(), "-leader") {
		t.Errorf("usage output missing flags:\n%s", buf.String())
	}
}
