package relation

import (
	"testing"
	"testing/quick"

	"uncertaindb/internal/value"
)

func TestAddContainsRemove(t *testing.T) {
	r := New(2)
	r.Add(value.Ints(1, 2))
	r.Add(value.Ints(1, 2)) // duplicate absorbed
	r.Add(value.Ints(3, 4))
	if r.Size() != 2 {
		t.Fatalf("size = %d, want 2", r.Size())
	}
	if !r.Contains(value.Ints(1, 2)) || r.Contains(value.Ints(2, 1)) {
		t.Fatal("Contains wrong")
	}
	r.Remove(value.Ints(1, 2))
	if r.Size() != 1 || r.Contains(value.Ints(1, 2)) {
		t.Fatal("Remove wrong")
	}
}

func TestArityPanics(t *testing.T) {
	r := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	r.Add(value.Ints(1, 2, 3))
}

func TestEqualAndKey(t *testing.T) {
	a := FromInts([]int64{1, 2}, []int64{3, 4})
	b := FromInts([]int64{3, 4}, []int64{1, 2})
	c := FromInts([]int64{1, 2})
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("order must not matter")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("distinct relations compared equal")
	}
	if a.Equal(New(3)) {
		t.Fatal("arity mismatch compared equal")
	}
}

func TestCopyIndependence(t *testing.T) {
	a := FromInts([]int64{1, 2})
	b := a.Copy()
	b.Add(value.Ints(5, 6))
	if a.Size() != 1 || b.Size() != 2 {
		t.Fatal("Copy is not independent")
	}
}

func TestTuplesSorted(t *testing.T) {
	a := FromInts([]int64{3, 0}, []int64{1, 9}, []int64{1, 2})
	ts := a.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) >= 0 {
			t.Fatal("Tuples not sorted")
		}
	}
}

func TestStringAndNames(t *testing.T) {
	a := FromInts([]int64{1, 2}).WithNames("x", "y")
	if got := a.String(); got != "{(1, 2)}" {
		t.Fatalf("String = %q", got)
	}
	if len(a.Names()) != 2 {
		t.Fatal("names lost")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong name count")
		}
	}()
	a.WithNames("only-one")
}

func TestActiveDomain(t *testing.T) {
	a := FromInts([]int64{1, 2}, []int64{2, 3})
	d := a.ActiveDomain()
	if d.Size() != 3 || !d.Contains(value.Int(3)) {
		t.Fatalf("active domain = %v", d)
	}
}

func TestSetOperations(t *testing.T) {
	a := FromInts([]int64{1}, []int64{2})
	b := FromInts([]int64{2}, []int64{3})
	if got := Union(a, b); got.Size() != 3 {
		t.Fatalf("union = %v", got)
	}
	if got := Difference(a, b); !got.Equal(FromInts([]int64{1})) {
		t.Fatalf("difference = %v", got)
	}
	if got := Intersection(a, b); !got.Equal(FromInts([]int64{2})) {
		t.Fatalf("intersection = %v", got)
	}
}

func TestCrossProductAndProject(t *testing.T) {
	a := FromInts([]int64{1}, []int64{2})
	b := FromInts([]int64{10, 20})
	x := CrossProduct(a, b)
	if x.Arity() != 3 || x.Size() != 2 {
		t.Fatalf("cross = %v", x)
	}
	if !x.Contains(value.Ints(1, 10, 20)) || !x.Contains(value.Ints(2, 10, 20)) {
		t.Fatalf("cross contents = %v", x)
	}
	p := Project(x, []int{2, 0})
	if !p.Contains(value.Ints(20, 1)) || p.Arity() != 2 {
		t.Fatalf("project = %v", p)
	}
}

func TestProjectDuplicateCollapse(t *testing.T) {
	a := FromInts([]int64{1, 5}, []int64{1, 7})
	p := Project(a, []int{0})
	if p.Size() != 1 {
		t.Fatalf("projection should collapse duplicates, got %v", p)
	}
}

func TestSelectAndSingleton(t *testing.T) {
	a := FromInts([]int64{1, 1}, []int64{1, 2}, []int64{3, 3})
	s := Select(a, func(tp value.Tuple) bool { return tp[0] == tp[1] })
	if s.Size() != 2 || !s.Contains(value.Ints(3, 3)) {
		t.Fatalf("select = %v", s)
	}
	if got := Singleton(value.Ints(9, 9)); got.Size() != 1 || got.Arity() != 2 {
		t.Fatalf("singleton = %v", got)
	}
}

func TestOpsPanicsOnArityMismatch(t *testing.T) {
	a, b := New(1), New(2)
	for i, f := range []func(){
		func() { Union(a, b) },
		func() { Difference(a, b) },
		func() { Intersection(a, b) },
		func() { Project(a, []int{5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: union is commutative, associative and idempotent on random
// unary integer relations.
func TestQuickUnionLaws(t *testing.T) {
	mk := func(xs []int64) *Relation {
		r := New(1)
		for _, x := range xs {
			r.Add(value.Ints(x))
		}
		return r
	}
	f := func(xs, ys, zs []int64) bool {
		a, b, c := mk(xs), mk(ys), mk(zs)
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) {
			return false
		}
		return Union(a, a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: difference and intersection satisfy a ∩ b = a − (a − b).
func TestQuickDiffIntersect(t *testing.T) {
	mk := func(xs []int64) *Relation {
		r := New(1)
		for _, x := range xs {
			r.Add(value.Ints(x))
		}
		return r
	}
	f := func(xs, ys []int64) bool {
		a, b := mk(xs), mk(ys)
		return Intersection(a, b).Equal(Difference(a, Difference(a, b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
