package probcalc

import (
	"fmt"
	"testing"

	"uncertaindb/internal/condition"
)

// memoChain builds the E12b "chain" lineage shape over vars boolean
// variables together with its distributions.
func memoChain(vars int) (condition.Condition, MapDists) {
	dists := make(MapDists)
	var disj []condition.Condition
	for i := 0; i+1 < vars; i++ {
		x, y := fmt.Sprintf("b%d", i), fmt.Sprintf("b%d", i+1)
		dists[condition.Variable(x)] = bern(0.3)
		dists[condition.Variable(y)] = bern(0.3)
		disj = append(disj, condition.And(condition.IsTrueVar(x), condition.IsTrueVar(y)))
	}
	return condition.Or(disj...), dists
}

// BenchmarkMemoWarmEvaluation measures re-evaluating a lineage condition
// whose d-tree is fully memoized — the hot path of every repeated marginal.
// Before the ID-keyed memo this path rendered a canonical string key for
// every visited node (EXPERIMENTS.md records the before/after allocation
// counts); now the key is an interned integer.
func BenchmarkMemoWarmEvaluation(b *testing.B) {
	for _, vars := range []int{8, 16, 24} {
		c, dists := memoChain(vars)
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			ev := New(dists)
			if _, err := ev.Probability(c); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Probability(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The memoization key itself must not allocate once a condition's nodes are
// interned: the memo is an ID-keyed map, and computing the ID of a warm
// condition is pure map lookups (this is the acceptance assertion for the
// string-key removal — the old canonKey allocated a rendered string per
// memo probe).
func TestMemoKeyNoAllocsWarm(t *testing.T) {
	c, dists := memoChain(12)
	ev := New(dists)
	if _, err := ev.Probability(c); err != nil {
		t.Fatal(err)
	}
	eng := ev.eng
	simplified := condition.Simplify(c)
	id := eng.interner.ID(simplified)
	if _, ok := eng.memo[id]; !ok {
		t.Fatalf("memo has no entry under the interned ID of the evaluated condition")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if eng.interner.ID(simplified) != id {
			t.Errorf("interned ID changed between runs")
		}
	})
	if allocs != 0 {
		t.Errorf("memo key computation allocates %v objects per probe, want 0", allocs)
	}
}
