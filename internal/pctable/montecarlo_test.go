package pctable

import (
	"math"
	"testing"

	"uncertaindb/internal/condition"
	"uncertaindb/internal/value"
)

// The decomposition-backed ConditionProbability agrees with the brute-force
// reference on the intro example's lineage conditions and on nested
// combinations.
func TestConditionProbabilityEngineAgreement(t *testing.T) {
	tab := introCoursesTable()
	conds := []condition.Condition{
		condition.EqVarConst("x", value.Str("phys")),
		condition.Or(
			condition.EqVarConst("x", value.Str("phys")),
			condition.EqVarConst("x", value.Str("chem"))),
		condition.And(
			condition.EqVarConst("x", value.Str("math")),
			condition.EqVarConst("t", value.Int(1))),
		condition.Or(
			condition.And(condition.EqVarConst("x", value.Str("math")), condition.EqVarConst("t", value.Int(1))),
			condition.And(condition.EqVarConst("x", value.Str("phys")), condition.EqVarConst("t", value.Int(0)))),
		condition.Not(condition.Or(
			condition.EqVarConst("x", value.Str("math")),
			condition.EqVarConst("t", value.Int(0)))),
		tab.Lineage(value.NewTuple(value.Str("Bob"), value.Str("phys"))),
		tab.Lineage(value.NewTuple(value.Str("Theo"), value.Str("math"))),
		condition.True(),
		condition.False(),
	}
	for i, c := range conds {
		got, err := tab.ConditionProbability(c)
		if err != nil {
			t.Fatalf("case %d: dtree: %v", i, err)
		}
		want, err := tab.ConditionProbabilityEnum(c)
		if err != nil {
			t.Fatalf("case %d: enum: %v", i, err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("case %d: dtree %.17g vs enum %.17g for %s", i, got, want, c)
		}
	}
}

// TupleProbabilityEnum mirrors TupleProbability, including the arity check.
func TestTupleProbabilityEnum(t *testing.T) {
	tab := introCoursesTable()
	target := value.NewTuple(value.Str("Bob"), value.Str("phys"))
	got, err := tab.TupleProbabilityEnum(target)
	if err != nil || math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("enum P(Bob,phys) = %g, %v", got, err)
	}
	if _, err := tab.TupleProbabilityEnum(value.NewTuple(value.Str("Bob"))); err == nil {
		t.Fatal("arity mismatch must be detected")
	}
}

// The parallel estimator is deterministic for a fixed (seed, n, workers),
// lands near the exact probability, and propagates errors.
func TestParallelMonteCarlo(t *testing.T) {
	tab := introCoursesTable()
	s, err := NewSampler(tab, 42)
	if err != nil {
		t.Fatal(err)
	}
	target := value.NewTuple(value.Str("Bob"), value.Str("phys"))
	lineage := tab.Lineage(target)

	est1, se, err := s.EstimateConditionProbabilityParallel(lineage, 40000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The parallel path must not consume the sequential stream, so a second
	// run on the same sampler reproduces the estimate exactly.
	est2, _, err := s.EstimateConditionProbabilityParallel(lineage, 40000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est1 != est2 {
		t.Fatalf("parallel estimate not deterministic: %g vs %g", est1, est2)
	}
	exact, err := tab.ConditionProbability(lineage)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est1-exact) > 5*se+1e-3 {
		t.Fatalf("estimate %g too far from exact %g (stderr %g)", est1, exact, se)
	}

	// Tuple-level wrapper and workers > n edge case.
	if _, _, err := s.EstimateTupleProbabilityParallel(target, 8, 64); err != nil {
		t.Fatal(err)
	}
	// workers <= 1 falls back to the sequential estimator.
	if _, _, err := s.EstimateConditionProbabilityParallel(lineage, 100, 1); err != nil {
		t.Fatal(err)
	}
	// Errors surface: unknown variable, non-positive sample count.
	if _, _, err := s.EstimateConditionProbabilityParallel(condition.IsTrueVar("nosuch"), 100, 4); err == nil {
		t.Fatal("unknown variable must be reported")
	}
	if _, _, err := s.EstimateConditionProbabilityParallel(condition.True(), 0, 4); err == nil {
		t.Fatal("non-positive sample count must be rejected")
	}
}
