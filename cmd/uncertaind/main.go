// Command uncertaind is a resident query service over probabilistic
// c-tables: a catalog of named tables, an engine with a compiled-plan cache,
// and a versioned HTTP JSON API. It is a thin HTTP shell over the public
// pkg/uncertain facade.
//
// Usage:
//
//	uncertaind -addr 127.0.0.1:8080 -load catalog.tbl [-cache 128] [-workers 4]
//
// -workers (default GOMAXPROCS) sizes both bounds: how many queries execute
// concurrently, and the shared pool all executions draw their extra
// batch-engine morsel goroutines from (so load cannot multiply the
// per-query width). /v1/stats reports the engine.ops counters, which
// include the batch-driver work units (batches, morsels) next to the
// row/probe counters.
//
// Endpoints (stable, versioned surface):
//
//	PUT    /v1/tables/{name}   register or replace a table (body: table script)
//	GET    /v1/tables          list catalog tables
//	GET    /v1/tables/{name}   one table's metadata and rendering
//	DELETE /v1/tables/{name}   drop a table
//	POST   /v1/query           {"query": "...", "engine": "dtree|enum|mc", ...}
//	POST   /v1/query/batch     {"queries": [{...}, ...]} — N queries, one
//	                           catalog snapshot, per-item errors
//	GET    /v1/stats           engine cache and latency counters
//	GET    /v1/changes         catalog change feed: ?from=V records after
//	                           version V (&limit=, &wait_ms= long-poll, capped
//	                           below the shutdown drain; the response reports
//	                           the effective wait); 410 Gone once V is
//	                           compacted away
//	GET    /metrics            Prometheus text exposition: query latency
//	                           histograms (cold/warm), plan-cache, operator,
//	                           probcalc-memo, catalog and WAL counters
//	GET    /v1/debug/slow      slow-query ring buffer: executions at or above
//	                           -slow-query-ms with their full span trees
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ (off by
// default; profiling endpoints are opt-in). -slow-query-ms tunes the
// slow-query capture threshold (default 100; negative disables capture) and
// -no-obs turns the observability core off entirely.
//
// With -data-dir the catalog is durable: mutations are appended to a
// write-ahead log before they are acknowledged, compacted snapshots are
// written every -snapshot-every mutations, startup recovers the catalog
// (latest valid snapshot + valid log tail, torn final record discarded)
// byte-identically at the exact versions, and graceful shutdown fsyncs and
// closes the log — a SIGTERM'd server loses zero acknowledged mutations.
// -fsync additionally syncs after every mutation (machine-crash safety).
//
// The pre-versioning unversioned routes (/tables, /query, /stats) remain as
// deprecated aliases of the same handlers; responses on them carry a
// "Deprecation: true" header and a Link to the /v1 successor. New clients
// should use /v1 only.
//
// Errors are classified: a query referencing an unknown table is 404, a
// request that can never succeed (bad query text, unknown engine, table
// without distributions) is 400, anything else is 500.
//
// The daemon amortizes parsing, the closed algebra (Theorems 4 and 9) and
// lineage decomposition across requests: repeated queries hit the prepared
// plan cache, which is invalidated per table on replacement, and batches
// additionally share one catalog snapshot. It shuts down gracefully on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux; served only with -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"uncertaindb/internal/value"
	"uncertaindb/pkg/uncertain"
)

func main() {
	log.SetFlags(0)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// multiFlag collects repeated -load flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// run is the testable body of the daemon: it parses flags from args, serves
// until ctx is cancelled, then shuts down gracefully. The actual listen
// address is printed to out, so -addr :0 is usable in tests.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("uncertaind", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	cacheSize := fs.Int("cache", 128, "maximum number of cached prepared plans")
	workers := fs.Int("workers", 0, "maximum concurrently executing queries and per-query morsel parallelism (0 = GOMAXPROCS)")
	noRewrites := fs.Bool("no-rewrites", false, "disable the logical-plan rewriter (debugging aid)")
	noBatch := fs.Bool("no-batch", false, "disable the vectorized batch engine, restoring tuple-at-a-time iterators (debugging aid)")
	dataDir := fs.String("data-dir", "", "directory for the durable catalog (WAL + snapshots); empty = in-memory, lost on restart")
	snapshotEvery := fs.Int("snapshot-every", 64, "mutations between compacted catalog snapshots (-data-dir only; <0 disables compaction)")
	fsync := fs.Bool("fsync", false, "fsync the WAL after every mutation (-data-dir only; graceful shutdown always syncs)")
	slowQueryMS := fs.Int("slow-query-ms", 100, "slow-query capture threshold in milliseconds (queries at or above it record their span tree at /v1/debug/slow; <0 disables capture)")
	noObs := fs.Bool("no-obs", false, "disable the observability core (spans, /metrics, slow-query log)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
	var loads multiFlag
	fs.Var(&loads, "load", "catalog script to load at startup (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return fmt.Errorf("%w (run with -h for usage)", err)
	}

	db, err := uncertain.Open(uncertain.Config{
		CacheSize:            *cacheSize,
		Workers:              *workers,
		DisableRewrites:      *noRewrites,
		DisableBatch:         *noBatch,
		DataDir:              *dataDir,
		SnapshotEvery:        *snapshotEvery,
		Fsync:                *fsync,
		DisableObservability: *noObs,
		SlowQueryMillis:      *slowQueryMS,
	})
	if err != nil {
		return fmt.Errorf("uncertaind: opening %s: %w", *dataDir, err)
	}
	defer db.Close()
	if *dataDir != "" {
		version, infos := db.Tables()
		fmt.Fprintf(out, "recovered %s: catalog version %d, %d tables\n", *dataDir, version, len(infos))
	}
	for _, path := range loads {
		names, err := db.LoadCatalogFile(path)
		if err != nil {
			return fmt.Errorf("uncertaind: loading %s: %w", path, err)
		}
		fmt.Fprintf(out, "loaded %s: tables %s\n", path, strings.Join(names, ", "))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := newHandler(db)
	if *pprofOn {
		// net/http/pprof registered itself on the default mux at import;
		// expose it only when asked.
		outer := http.NewServeMux()
		outer.Handle("/debug/pprof/", http.DefaultServeMux)
		outer.Handle("/", handler)
		handler = outer
		fmt.Fprintln(out, "pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(out, "uncertaind listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	// Flush after the listener has drained: every mutation acknowledged over
	// HTTP is fsynced and the WAL is cleanly closed before the process says
	// goodbye, so a SIGTERM'd server recovers with zero lost mutations.
	if err := db.Close(); err != nil {
		return fmt.Errorf("uncertaind: closing data dir: %w", err)
	}
	fmt.Fprintln(out, "uncertaind: shut down")
	return nil
}

// newHandler builds the HTTP API over the facade: the /v1 surface plus the
// deprecated unversioned aliases.
func newHandler(db *uncertain.DB) http.Handler {
	mux := http.NewServeMux()
	register := func(prefix string, wrap func(http.HandlerFunc) http.HandlerFunc) {
		mux.HandleFunc("PUT "+prefix+"/tables/{name}", wrap(func(w http.ResponseWriter, r *http.Request) {
			handlePutTable(db, w, r)
		}))
		mux.HandleFunc("GET "+prefix+"/tables", wrap(func(w http.ResponseWriter, r *http.Request) {
			handleListTables(db, w)
		}))
		mux.HandleFunc("GET "+prefix+"/tables/{name}", wrap(func(w http.ResponseWriter, r *http.Request) {
			handleGetTable(db, w, r)
		}))
		mux.HandleFunc("DELETE "+prefix+"/tables/{name}", wrap(func(w http.ResponseWriter, r *http.Request) {
			name := r.PathValue("name")
			ok, err := db.DropTable(name)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			if !ok {
				writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"dropped": name, "catalogVersion": db.CatalogVersion()})
		}))
		mux.HandleFunc("POST "+prefix+"/query", wrap(func(w http.ResponseWriter, r *http.Request) {
			handleQuery(db, w, r)
		}))
		mux.HandleFunc("GET "+prefix+"/stats", wrap(func(w http.ResponseWriter, r *http.Request) {
			version, infos := db.Tables()
			names := make([]string, 0, len(infos))
			for _, info := range infos {
				names = append(names, info.Name)
			}
			writeJSON(w, http.StatusOK, statsResponse{
				Engine:         db.Stats(),
				CatalogVersion: version,
				Tables:         names,
			})
		}))
	}
	register("/v1", func(h http.HandlerFunc) http.HandlerFunc { return h })
	register("", deprecated)
	// The batch and change-feed endpoints are /v1-only: they postdate the
	// unversioned surface.
	mux.HandleFunc("POST /v1/query/batch", func(w http.ResponseWriter, r *http.Request) {
		handleQueryBatch(db, w, r)
	})
	mux.HandleFunc("GET /v1/changes", func(w http.ResponseWriter, r *http.Request) {
		handleChanges(db, w, r)
	})
	// Observability surface: Prometheus metrics (conventionally unversioned)
	// and the slow-query ring buffer.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(db, w)
	})
	mux.HandleFunc("GET /v1/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		handleSlowQueries(db, w)
	})
	return mux
}

// handleMetrics serves GET /metrics in the Prometheus text exposition format.
func handleMetrics(db *uncertain.DB, w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ok, err := db.WriteMetrics(w)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("observability is disabled (-no-obs)"))
		return
	}
	if err != nil {
		log.Printf("uncertaind: writing metrics: %v", err)
	}
}

// slowResponse is the JSON shape of GET /v1/debug/slow.
type slowResponse struct {
	// ThresholdMillis is the capture threshold; 0 means capture is disabled.
	ThresholdMillis int64 `json:"thresholdMillis"`
	// Total counts every capture since startup, including ones evicted from
	// the ring.
	Total uint64 `json:"total"`
	// Queries are the retained captures, most recent first, each with its
	// full span tree.
	Queries []uncertain.SlowQuery `json:"queries"`
}

// handleSlowQueries serves GET /v1/debug/slow: the retained slow-query
// captures with their span trees.
func handleSlowQueries(db *uncertain.DB, w http.ResponseWriter) {
	queries, total := db.SlowQueries()
	if queries == nil {
		queries = []uncertain.SlowQuery{}
	}
	writeJSON(w, http.StatusOK, slowResponse{
		ThresholdMillis: db.SlowQueryThreshold().Milliseconds(),
		Total:           total,
		Queries:         queries,
	})
}

// changeJSON is the JSON shape of one change-feed record. Table is the
// base64 canonical encoding of the put table (wal.DecodeTable decodes it);
// Text is a human-readable rendering.
type changeJSON struct {
	Version       uint64 `json:"version"`
	Kind          string `json:"kind"`
	Name          string `json:"name"`
	Probabilistic bool   `json:"probabilistic,omitempty"`
	Table         []byte `json:"table,omitempty"` // encoding/json renders []byte as base64
	Text          string `json:"text,omitempty"`
}

type changesResponse struct {
	From           uint64 `json:"from"`
	CatalogVersion uint64 `json:"catalogVersion"`
	// WaitMs is the effective long-poll wait applied to this request after
	// capping — clients asking for more learn the real bound instead of
	// silently getting less.
	WaitMs  int64        `json:"waitMs"`
	Changes []changeJSON `json:"changes"`
}

// Change-feed request bounds: one response page and the longest admissible
// long-poll. The wait cap must stay below the server's shutdown drain
// timeout (5s in run): a long-poll pinned at 30s used to hold its handler
// goroutine past the drain, so graceful shutdown timed out whenever an idle
// feed consumer was connected.
const (
	maxChangesLimit = 1024
	maxChangesWait  = 4 * time.Second
)

// handleChanges serves GET /v1/changes?from=V[&limit=N][&wait_ms=M]: the
// catalog mutations with version > V, oldest first. A from that has been
// compacted away is 410 Gone — the consumer re-syncs by listing the tables
// and resumes from the returned catalog version.
func handleChanges(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseUintParam(q.Get("from"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad \"from\": %w", err))
		return
	}
	limit, err := parseUintParam(q.Get("limit"), maxChangesLimit)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad \"limit\": %w", err))
		return
	}
	if limit == 0 || limit > maxChangesLimit {
		limit = maxChangesLimit
	}
	waitMS, err := parseUintParam(q.Get("wait_ms"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad \"wait_ms\": %w", err))
		return
	}
	wait := time.Duration(waitMS) * time.Millisecond
	if wait > maxChangesWait {
		wait = maxChangesWait
	}
	changes, version, err := db.Changes(r.Context(), from, int(limit), wait)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, uncertain.ErrCompacted) {
			status = http.StatusGone
		} else if strings.Contains(err.Error(), "but the catalog is at") {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	resp := changesResponse{From: from, CatalogVersion: version, WaitMs: wait.Milliseconds(), Changes: make([]changeJSON, 0, len(changes))}
	for _, ch := range changes {
		resp.Changes = append(resp.Changes, changeJSON{
			Version:       ch.Version,
			Kind:          ch.Kind,
			Name:          ch.Name,
			Probabilistic: ch.Probabilistic,
			Table:         ch.Table,
			Text:          ch.Text,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseUintParam parses an optional unsigned query parameter.
func parseUintParam(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// deprecated marks responses on the unversioned aliases: clients are pointed
// at the /v1 successor route.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

// errStatus maps typed facade errors onto HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, uncertain.ErrUnknownTable):
		return http.StatusNotFound
	case errors.Is(err, uncertain.ErrBadQuery):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// tableInfo is the JSON shape of one catalog table.
type tableInfo struct {
	Name          string `json:"name"`
	Arity         int    `json:"arity"`
	Rows          int    `json:"rows"`
	Variables     int    `json:"variables"`
	Probabilistic bool   `json:"probabilistic"`
	Version       uint64 `json:"version"`
}

type statsResponse struct {
	Engine         uncertain.Stats `json:"engine"`
	CatalogVersion uint64          `json:"catalogVersion"`
	Tables         []string        `json:"tables"`
}

func infoJSON(info uncertain.TableInfo) tableInfo {
	return tableInfo{
		Name:          info.Name,
		Arity:         info.Arity,
		Rows:          info.Rows,
		Variables:     info.Variables,
		Probabilistic: info.Probabilistic,
		Version:       info.Version,
	}
}

func handlePutTable(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tab, err := uncertain.ParseTable(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if tab.Name() != name {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("table script declares %q but the URL names %q", tab.Name(), name))
		return
	}
	version, err := db.PutTable(tab)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "catalogVersion": version})
}

func handleListTables(db *uncertain.DB, w http.ResponseWriter) {
	version, infos := db.Tables()
	out := make([]tableInfo, 0, len(infos))
	for _, info := range infos {
		out = append(out, infoJSON(info))
	}
	writeJSON(w, http.StatusOK, map[string]any{"catalogVersion": version, "tables": out})
}

func handleGetTable(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, text, ok := db.Table(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		tableInfo
		Text string `json:"text"`
	}{infoJSON(info), text})
}

// queryRequest is the JSON body of POST /query (and one element of a batch).
type queryRequest struct {
	Query   string `json:"query"`
	Engine  string `json:"engine"`
	Samples int    `json:"samples"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
	// Analyze attaches an EXPLAIN ANALYZE plan tree (per-operator wall time,
	// rows in/out, probe/residual counts) and the execution's span tree to
	// the response.
	Analyze bool `json:"analyze"`
}

func (q queryRequest) request() uncertain.Request {
	return uncertain.Request{Query: q.Query, Engine: q.Engine, Samples: q.Samples, Seed: q.Seed, Workers: q.Workers, Analyze: q.Analyze}
}

// tupleAnswer is one answer tuple: the tuple as a JSON array of values plus
// its marginal probability.
type tupleAnswer struct {
	Tuple   []any   `json:"tuple"`
	P       float64 `json:"p"`
	StdErr  float64 `json:"stderr,omitempty"`
	Certain bool    `json:"certain"`
}

type queryResponse struct {
	Query          string        `json:"query"`
	Engine         string        `json:"engine"`
	CatalogVersion uint64        `json:"catalogVersion"`
	Tables         []string      `json:"tables"`
	CacheHit       bool          `json:"cacheHit"`
	Answer         string        `json:"answer"`
	Plan           string        `json:"plan"`
	Tuples         []tupleAnswer `json:"tuples"`
	Certain        [][]any       `json:"certain"`
	Possible       [][]any       `json:"possible"`
	PrepareMicros  int64         `json:"prepareMicros"`
	ExecMicros     int64         `json:"execMicros"`
	// Analyzed is the EXPLAIN ANALYZE plan tree ("analyze": true only).
	Analyzed *uncertain.PlanNode `json:"analyzed,omitempty"`
	// Trace is the execution's span tree ("analyze": true with
	// observability enabled only).
	Trace *uncertain.Span `json:"trace,omitempty"`
}

func resultJSON(res *uncertain.Result) queryResponse {
	resp := queryResponse{
		Query:          res.Query,
		Engine:         string(res.Kind),
		CatalogVersion: res.CatalogVersion,
		Tables:         res.Tables,
		CacheHit:       res.CacheHit,
		Answer:         res.Answer,
		Plan:           res.Plan,
		Tuples:         make([]tupleAnswer, 0, len(res.Tuples)),
		Certain:        [][]any{},
		Possible:       [][]any{},
		PrepareMicros:  res.PrepareDuration.Microseconds(),
		ExecMicros:     res.ExecDuration.Microseconds(),
		Analyzed:       res.Analyzed,
		Trace:          res.Trace,
	}
	for _, ta := range res.Tuples {
		jt := tupleJSON(ta.Tuple)
		resp.Tuples = append(resp.Tuples, tupleAnswer{Tuple: jt, P: ta.P, StdErr: ta.StdErr, Certain: ta.Certain})
		resp.Possible = append(resp.Possible, jt)
		if ta.Certain {
			resp.Certain = append(resp.Certain, jt)
		}
	}
	return resp
}

func handleQuery(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing \"query\""))
		return
	}
	res, err := db.Query(req.request())
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resultJSON(res))
}

// batchRequest is the JSON body of POST /v1/query/batch.
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

// batchItem is one element of a batch response: either a query response or
// an error (never both).
type batchItem struct {
	Error string `json:"error,omitempty"`
	*queryResponse
}

type batchResponse struct {
	CatalogVersion uint64      `json:"catalogVersion"`
	Results        []batchItem `json:"results"`
}

// maxBatchQueries bounds one batch request.
const maxBatchQueries = 1024

func handleQueryBatch(db *uncertain.DB, w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing \"queries\""))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
		return
	}
	reqs := make([]uncertain.Request, len(req.Queries))
	for i, q := range req.Queries {
		reqs[i] = q.request()
	}
	items, version := db.QueryBatch(reqs)
	resp := batchResponse{CatalogVersion: version, Results: make([]batchItem, len(items))}
	for i, item := range items {
		if item.Err != nil {
			resp.Results[i] = batchItem{Error: item.Err.Error()}
			continue
		}
		qr := resultJSON(item.Result)
		resp.Results[i] = batchItem{queryResponse: &qr}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tupleJSON renders a tuple as a JSON array of native values.
func tupleJSON(t uncertain.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Kind() {
		case value.KindInt:
			out[i] = v.AsInt()
		case value.KindString:
			out[i] = v.AsString()
		case value.KindBool:
			out[i] = v.AsBool()
		default:
			out[i] = nil
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		log.Printf("uncertaind: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
