package parser

import (
	"strings"
	"testing"
)

const catalogScript = `# two tables, one probabilistic
table Takes arity 2
row 'Alice', x
row 'Bob',   'math' | b = 1
dist x = {'math':0.3, 'phys':0.7}
dist b = {0:0.6, 1:0.4}

table Labs arity 2
row 'phys', 'L1'
row 'math', 'L2' | l = 1
dist l = {0:0.5, 1:0.5}
`

func TestParseCatalog(t *testing.T) {
	tables, err := ParseCatalogString(catalogScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	if tables[0].Name != "Takes" || tables[1].Name != "Labs" {
		t.Errorf("names = %q, %q; want Takes, Labs", tables[0].Name, tables[1].Name)
	}
	if tables[0].CTable.NumRows() != 2 || tables[1].CTable.NumRows() != 2 {
		t.Errorf("row counts = %d, %d; want 2, 2", tables[0].CTable.NumRows(), tables[1].CTable.NumRows())
	}
	if !tables[0].HasDistributions || !tables[1].HasDistributions {
		t.Error("both tables should carry distributions")
	}
}

func TestParseCatalogSingleTable(t *testing.T) {
	tables, err := ParseCatalogString("table S arity 1\nrow 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Name != "S" {
		t.Fatalf("got %v, want the single table S", tables)
	}
}

func TestParseCatalogErrors(t *testing.T) {
	cases := []struct {
		name, script, wantErr string
	}{
		{"empty", "# only comments\n", "no table declaration"},
		{"preamble", "row 1\ntable S arity 1\n", "before the first table"},
		{"duplicate", "table S arity 1\nrow 1\ntable S arity 1\nrow 2\n", "duplicate table name"},
		{"bad block", "table S arity 1\nrow 1, 2\n", "table block starting at line 1"},
	}
	for _, tc := range cases {
		_, err := ParseCatalogString(tc.script)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got error %v, want it to contain %q", tc.name, err, tc.wantErr)
		}
	}
}
